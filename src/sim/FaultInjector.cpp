//===- sim/FaultInjector.cpp ------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include "obs/EventLog.h"

#include <cstdlib>
#include <cstring>
#include <string>

using namespace specsync;

FaultPlan FaultPlan::uniform(uint64_t Seed, double RatePct) {
  FaultPlan P;
  P.Seed = Seed;
  P.SignalDropPct = RatePct;
  P.SignalDelayPct = RatePct;
  P.SignalCorruptPct = RatePct;
  P.MispredictPct = RatePct;
  P.SpuriousViolationPct = RatePct;
  P.HwUpdateDropPct = RatePct;
  return P;
}

namespace {
/// Stream id separating fault draws from workload PRNG streams (which use
/// the program's RandSeed directly, i.e. stream semantics of "no stream").
constexpr uint64_t FaultStreamId = 0xfa017;
} // namespace

FaultInjector::FaultInjector(const FaultPlan &Plan)
    : Enabled(Plan.enabled()), RtEnabled(Plan.rtEnabled()), Plan(Plan),
      Rng(Random::stream(Plan.Seed, FaultStreamId)),
      Ev(&obs::EventLog::global()) {}

bool FaultInjector::roll(double Pct, uint64_t &Count) {
  if (!Enabled || Pct <= 0)
    return false;
  if (Rng.nextDouble() * 100.0 >= Pct)
    return false;
  ++Count;
  return true;
}

// Thread-targeted classes gate on rtEnabled() so an rt-only plan works even
// though enabled() (the timing-simulator gate) stays false.
bool FaultInjector::rollRt(double Pct, uint64_t &Count) {
  if (!RtEnabled || Pct <= 0)
    return false;
  if (Rng.nextDouble() * 100.0 >= Pct)
    return false;
  ++Count;
  return true;
}

// The injector does not know the simulated cycle; a FaultFired record is a
// class marker in stream order (it lands adjacent to the signal/predictor
// event it perturbed), not a timestamped sample.
void FaultInjector::noteFired(uint8_t Class) {
  if (!Ev || !Ev->active())
    return;
  obs::SpecEvent E;
  E.Kind = static_cast<uint8_t>(obs::EventKind::FaultFired);
  E.Flags = Class;
  Ev->push(E);
}

bool FaultInjector::dropSignal() {
  if (!roll(Plan.SignalDropPct, Counts.SignalDrops))
    return false;
  noteFired(obs::event_flags::kFaultDrop);
  return true;
}

uint64_t FaultInjector::delaySignal() {
  if (!roll(Plan.SignalDelayPct, Counts.SignalDelays))
    return 0;
  noteFired(obs::event_flags::kFaultDelay);
  return Plan.SignalDelayCycles;
}

bool FaultInjector::corruptForward() {
  if (!roll(Plan.SignalCorruptPct, Counts.Corruptions))
    return false;
  noteFired(obs::event_flags::kFaultCorrupt);
  return true;
}

bool FaultInjector::forceMispredict() {
  if (!roll(Plan.MispredictPct, Counts.Mispredicts))
    return false;
  noteFired(obs::event_flags::kFaultMispredict);
  return true;
}

bool FaultInjector::spuriousViolation() {
  if (!roll(Plan.SpuriousViolationPct, Counts.SpuriousViolations))
    return false;
  noteFired(obs::event_flags::kFaultSpurious);
  return true;
}

bool FaultInjector::dropHwUpdate() {
  if (!roll(Plan.HwUpdateDropPct, Counts.HwDrops))
    return false;
  noteFired(obs::event_flags::kFaultHwDrop);
  return true;
}

bool FaultInjector::delayCommit() {
  if (!rollRt(Plan.RtDelayedCommitPct, Counts.DelayedCommits))
    return false;
  noteFired(obs::event_flags::kFaultRtDelayCommit);
  return true;
}

bool FaultInjector::spuriousAbort() {
  if (!rollRt(Plan.RtSpuriousAbortPct, Counts.SpuriousAborts))
    return false;
  noteFired(obs::event_flags::kFaultRtSpuriousAbort);
  return true;
}

bool FaultInjector::stallWorker() {
  if (!rollRt(Plan.RtStalledWorkerPct, Counts.WorkerStalls))
    return false;
  noteFired(obs::event_flags::kFaultRtWorkerStall);
  return true;
}

//===----------------------------------------------------------------------===//
// Argument parsing
//===----------------------------------------------------------------------===//

namespace {

bool matchU64(const char *Arg, const char *Prefix, uint64_t &Out) {
  size_t N = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, N) != 0)
    return false;
  Out = std::strtoull(Arg + N, nullptr, 10);
  return true;
}

bool matchDouble(const char *Arg, const char *Prefix, double &Out) {
  size_t N = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, N) != 0)
    return false;
  Out = std::strtod(Arg + N, nullptr);
  return true;
}

bool matchUnsigned(const char *Arg, const char *Prefix, unsigned &Out) {
  uint64_t V;
  if (!matchU64(Arg, Prefix, V))
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

RobustnessOptions specsync::parseRobustnessArgs(int argc, char **argv) {
  RobustnessOptions R;
  // --fault-rate sets every class; per-class flags refine it afterwards,
  // so order the uniform expansion before the per-class overrides.
  double UniformRate = -1.0;

  if (const char *E = std::getenv("SPECSYNC_FAULT_SEED"))
    R.Plan.Seed = std::strtoull(E, nullptr, 10);
  if (const char *E = std::getenv("SPECSYNC_FAULT_RATE"))
    UniformRate = std::strtod(E, nullptr);
  if (const char *E = std::getenv("SPECSYNC_WATCHDOG_BUDGET"))
    R.WatchdogBudget = std::strtoull(E, nullptr, 10);

  for (int I = 1; I < argc; ++I)
    matchDouble(argv[I], "--fault-rate=", UniformRate);
  if (UniformRate >= 0) {
    uint64_t Seed = R.Plan.Seed;
    R.Plan = FaultPlan::uniform(Seed, UniformRate);
  }

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    matchU64(A, "--fault-seed=", R.Plan.Seed);
    matchDouble(A, "--fault-drop=", R.Plan.SignalDropPct);
    matchDouble(A, "--fault-delay=", R.Plan.SignalDelayPct);
    matchU64(A, "--fault-delay-cycles=", R.Plan.SignalDelayCycles);
    matchDouble(A, "--fault-corrupt=", R.Plan.SignalCorruptPct);
    matchDouble(A, "--fault-mispredict=", R.Plan.MispredictPct);
    matchDouble(A, "--fault-spurious=", R.Plan.SpuriousViolationPct);
    matchDouble(A, "--fault-hw-drop=", R.Plan.HwUpdateDropPct);
    matchDouble(A, "--fault-rt-delay-commit=", R.Plan.RtDelayedCommitPct);
    matchU64(A, "--fault-rt-delay-micros=", R.Plan.RtDelayedCommitMicros);
    matchDouble(A, "--fault-rt-spurious-abort=", R.Plan.RtSpuriousAbortPct);
    matchDouble(A, "--fault-rt-stall-worker=", R.Plan.RtStalledWorkerPct);
    matchU64(A, "--fault-rt-stall-micros=", R.Plan.RtStallMicros);
    matchU64(A, "--watchdog-budget=", R.WatchdogBudget);
    matchUnsigned(A, "--watchdog-retry-limit=", R.EpochRetryLimit);
    matchUnsigned(A, "--watchdog-demote-threshold=", R.GroupDemoteThreshold);
    matchDouble(A, "--degrade-squash-rate=", R.DegradeSquashRate);
  }
  return R;
}
