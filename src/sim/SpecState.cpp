//===- sim/SpecState.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SpecState.h"

#include <algorithm>

using namespace specsync;

void SpecState::markRead(uint64_t Addr, uint64_t Epoch, uint32_t LoadStaticId,
                         uint32_t LoadContext, int32_t LoadSyncId,
                         uint64_t Cycle) {
  uint64_t Line = lineOf(Addr);
  std::vector<ReadMark> &Marks = Readers[Line];
  for (const ReadMark &M : Marks)
    if (M.Epoch == Epoch)
      return; // Already marked by this epoch; first reader wins.
  Marks.push_back(ReadMark{Epoch, LoadStaticId, LoadContext, LoadSyncId,
                           Cycle});
  EpochLines[Epoch].push_back(Line);
}

std::optional<ReadMark>
SpecState::findViolatedReader(uint64_t Addr, uint64_t WriterEpoch) const {
  auto It = Readers.find(lineOf(Addr));
  if (It == Readers.end())
    return std::nullopt;
  const ReadMark *Best = nullptr;
  for (const ReadMark &M : It->second) {
    if (M.Epoch <= WriterEpoch)
      continue;
    if (!Best || M.Epoch < Best->Epoch)
      Best = &M;
  }
  if (!Best)
    return std::nullopt;
  return *Best;
}

void SpecState::clearEpoch(uint64_t Epoch) {
  auto It = EpochLines.find(Epoch);
  if (It == EpochLines.end())
    return;
  for (uint64_t Line : It->second) {
    auto RIt = Readers.find(Line);
    if (RIt == Readers.end())
      continue;
    std::vector<ReadMark> &Marks = RIt->second;
    Marks.erase(std::remove_if(
                    Marks.begin(), Marks.end(),
                    [&](const ReadMark &M) { return M.Epoch == Epoch; }),
                Marks.end());
    if (Marks.empty())
      Readers.erase(RIt);
  }
  EpochLines.erase(It);
}
