//===- sim/SpecState.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SpecState.h"

#include <algorithm>

using namespace specsync;

void SpecState::markRead(uint64_t Addr, uint64_t Epoch, uint32_t LoadStaticId,
                         uint32_t LoadContext, int32_t LoadSyncId,
                         uint64_t Cycle) {
  uint64_t Line = lineOf(Addr);
  // Rule 3 (shared with the rt backend): first reader per line wins.
  if (conflict::addFirstReadMark(Readers[Line],
                                 ReadMark{Epoch, LoadStaticId, LoadContext,
                                          LoadSyncId, Cycle}))
    EpochLines[Epoch].push_back(Line);
}

std::optional<ReadMark>
SpecState::findViolatedReader(uint64_t Addr, uint64_t WriterEpoch) const {
  auto It = Readers.find(lineOf(Addr));
  if (It == Readers.end())
    return std::nullopt;
  // Rule 4 (shared): the oldest reader logically later than the writer.
  const ReadMark *Best = conflict::oldestLaterReader(It->second, WriterEpoch);
  if (!Best)
    return std::nullopt;
  return *Best;
}

void SpecState::clearEpoch(uint64_t Epoch) {
  auto It = EpochLines.find(Epoch);
  if (It == EpochLines.end())
    return;
  for (uint64_t Line : It->second) {
    auto RIt = Readers.find(Line);
    if (RIt == Readers.end())
      continue;
    std::vector<ReadMark> &Marks = RIt->second;
    Marks.erase(std::remove_if(
                    Marks.begin(), Marks.end(),
                    [&](const ReadMark &M) { return M.Epoch == Epoch; }),
                Marks.end());
    if (Marks.empty())
      Readers.erase(RIt);
  }
  EpochLines.erase(It);
}
