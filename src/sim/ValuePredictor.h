//===- sim/ValuePredictor.h - Last-value prediction -------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware value-prediction comparison point (paper Section 4.2, bar
/// P): a direct-mapped, tagged, last-value predictor with 2-bit confidence.
/// A confident, correct prediction lets a violating load proceed without
/// synchronization; a confident, wrong prediction costs a restart.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_VALUEPREDICTOR_H
#define SPECSYNC_SIM_VALUEPREDICTOR_H

#include <cstdint>
#include <vector>

namespace specsync {

class FaultInjector;
namespace obs {
struct Counter;
class EventLog;
} // namespace obs

class ValuePredictor {
public:
  explicit ValuePredictor(unsigned NumEntries);

  /// Outcome of consulting the predictor for one dynamic load.
  enum class Outcome {
    NoPrediction,   ///< Cold/conflicting entry or low confidence.
    CorrectConfident,
    WrongConfident,
  };

  /// Routes confident predictions through \p FI, which may force them
  /// wrong. nullptr disables injection.
  void setFaultInjector(FaultInjector *FI) { Faults = FI; }

  /// Consults and then trains the entry for \p LoadId with the load's
  /// actual value. \p AllowFault = false bypasses forced mispredictions
  /// (the simulator protects livelocked epochs from further injection).
  Outcome predictAndTrain(uint32_t LoadId, uint64_t ActualValue,
                          bool AllowFault = true);

  uint64_t lookups() const { return Lookups; }
  uint64_t confidentCorrect() const { return NumCorrect; }
  uint64_t confidentWrong() const { return NumWrong; }

private:
  struct Entry {
    uint32_t Tag = 0; ///< 0 = invalid (load ids start at 1).
    uint64_t LastValue = 0;
    uint8_t Confidence = 0; ///< Saturating 0..3; predict when >= 2.
  };

  std::vector<Entry> Table;
  uint64_t Lookups = 0;
  uint64_t NumCorrect = 0;
  uint64_t NumWrong = 0;
  FaultInjector *Faults = nullptr;

  // Registry handles bound to the constructing thread's current registry
  // (per-cell under the parallel runner).
  obs::Counter *CLookups;
  obs::Counter *CCorrect;
  obs::Counter *CWrong;
  obs::EventLog *Ev; ///< Causal ledger, same binding rule.
};

} // namespace specsync

#endif // SPECSYNC_SIM_VALUEPREDICTOR_H
