//===- sim/ValuePredictor.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/ValuePredictor.h"

#include <cassert>

using namespace specsync;

ValuePredictor::ValuePredictor(unsigned NumEntries) : Table(NumEntries) {
  assert(NumEntries > 0 && "predictor needs at least one entry");
}

ValuePredictor::Outcome ValuePredictor::predictAndTrain(uint32_t LoadId,
                                                        uint64_t ActualValue) {
  ++Lookups;
  Entry &E = Table[LoadId % Table.size()];

  Outcome Result = Outcome::NoPrediction;
  if (E.Tag == LoadId && E.Confidence >= 2) {
    if (E.LastValue == ActualValue) {
      Result = Outcome::CorrectConfident;
      ++NumCorrect;
    } else {
      Result = Outcome::WrongConfident;
      ++NumWrong;
    }
  }

  // Train.
  if (E.Tag != LoadId) {
    E.Tag = LoadId;
    E.LastValue = ActualValue;
    E.Confidence = 0;
    return Result;
  }
  if (E.LastValue == ActualValue) {
    if (E.Confidence < 3)
      ++E.Confidence;
  } else {
    E.LastValue = ActualValue;
    E.Confidence = 0;
  }
  return Result;
}
