//===- sim/ValuePredictor.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/ValuePredictor.h"

#include "obs/EventLog.h"
#include "obs/StatRegistry.h"
#include "sim/FaultInjector.h"

#include <cassert>

using namespace specsync;

// Handles resolve at construction time against the constructing thread's
// current registry (per-cell under the parallel experiment runner) —
// never cache them in function-local statics, which would pin one cell's
// registry across threads.
ValuePredictor::ValuePredictor(unsigned NumEntries)
    : Table(NumEntries),
      CLookups(obs::StatRegistry::global().counter("sim.predictor.lookups")),
      CCorrect(obs::StatRegistry::global().counter("sim.predictor.correct")),
      CWrong(obs::StatRegistry::global().counter("sim.predictor.wrong")),
      Ev(&obs::EventLog::global()) {
  assert(NumEntries > 0 && "predictor needs at least one entry");
}

ValuePredictor::Outcome
ValuePredictor::predictAndTrain(uint32_t LoadId, uint64_t ActualValue,
                                bool AllowFault) {
  ++Lookups;
  CLookups->add(1);
  Entry &E = Table[LoadId % Table.size()];

  Outcome Result = Outcome::NoPrediction;
  if (E.Tag == LoadId && E.Confidence >= 2) {
    // An injected fault flips a would-be-correct confident prediction: the
    // predictor confidently supplies a stale value and pays the restart.
    if (E.LastValue == ActualValue && AllowFault && Faults &&
        Faults->forceMispredict()) {
      Result = Outcome::WrongConfident;
      ++NumWrong;
      CWrong->add(1);
    } else if (E.LastValue == ActualValue) {
      Result = Outcome::CorrectConfident;
      ++NumCorrect;
      CCorrect->add(1);
    } else {
      Result = Outcome::WrongConfident;
      ++NumWrong;
      CWrong->add(1);
    }
  }

  if (Ev->active()) {
    obs::SpecEvent LE;
    LE.Kind = static_cast<uint8_t>(obs::EventKind::PredictLookup);
    LE.StaticId = LoadId;
    LE.Aux = ActualValue;
    LE.Flags = Result == Outcome::CorrectConfident
                   ? obs::event_flags::kPredCorrect
                   : Result == Outcome::WrongConfident
                         ? obs::event_flags::kPredWrong
                         : obs::event_flags::kPredNone;
    Ev->push(LE);
  }

  // Train.
  if (E.Tag != LoadId) {
    E.Tag = LoadId;
    E.LastValue = ActualValue;
    E.Confidence = 0;
    return Result;
  }
  if (E.LastValue == ActualValue) {
    if (E.Confidence < 3)
      ++E.Confidence;
  } else {
    E.LastValue = ActualValue;
    E.Confidence = 0;
  }
  return Result;
}
