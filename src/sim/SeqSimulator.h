//===- sim/SeqSimulator.h - Sequential baseline timing ----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Times the original sequential program on one core with exactly the same
/// instruction cost model as the TLS simulator — the normalization baseline
/// for every figure ("each bar is normalized to the execution time of the
/// original sequential version").
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_SEQSIMULATOR_H
#define SPECSYNC_SIM_SEQSIMULATOR_H

#include "interp/Trace.h"
#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace specsync {

struct SeqSimResult {
  uint64_t TotalCycles = 0;
  uint64_t SeqCycles = 0;                  ///< Outside the parallel region.
  std::vector<uint64_t> RegionCycles;      ///< Per region instance.
  uint64_t regionCyclesTotal() const {
    uint64_t N = 0;
    for (uint64_t C : RegionCycles)
      N += C;
    return N;
  }
};

/// Simulates the whole program trace on a single core.
SeqSimResult simulateSequential(const MachineConfig &Config,
                                const ProgramTrace &Trace);

} // namespace specsync

#endif // SPECSYNC_SIM_SEQSIMULATOR_H
