//===- sim/TLSSimulator.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TLSSimulator.h"

#include "ir/Remedy.h"
#include "obs/EventLog.h"
#include "obs/StatRegistry.h"
#include "obs/TraceLog.h"
#include "sim/ConflictRules.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace specsync;

void TLSSimResult::accumulate(const TLSSimResult &RHS) {
  Completed = Completed && RHS.Completed;
  Cycles += RHS.Cycles;
  Slots.Busy += RHS.Slots.Busy;
  Slots.Fail += RHS.Slots.Fail;
  Slots.SyncScalar += RHS.Slots.SyncScalar;
  Slots.SyncMem += RHS.Slots.SyncMem;
  Slots.Total += RHS.Slots.Total;
  EpochsCommitted += RHS.EpochsCommitted;
  Violations += RHS.Violations;
  SabViolations += RHS.SabViolations;
  PredictRestarts += RHS.PredictRestarts;
  ViolCompilerOnly += RHS.ViolCompilerOnly;
  ViolHwOnly += RHS.ViolHwOnly;
  ViolBoth += RHS.ViolBoth;
  ViolNeither += RHS.ViolNeither;
  SabMaxOccupancy = std::max(SabMaxOccupancy, RHS.SabMaxOccupancy);
  SabOverflows += RHS.SabOverflows;
  HwTableResets = std::max(HwTableResets, RHS.HwTableResets);
  PredictorCorrect += RHS.PredictorCorrect;
  PredictorWrong += RHS.PredictorWrong;
  FilteredWaits += RHS.FilteredWaits;
  Faults.SignalDrops += RHS.Faults.SignalDrops;
  Faults.SignalDelays += RHS.Faults.SignalDelays;
  Faults.Corruptions += RHS.Faults.Corruptions;
  Faults.Mispredicts += RHS.Faults.Mispredicts;
  Faults.SpuriousViolations += RHS.Faults.SpuriousViolations;
  Faults.HwDrops += RHS.Faults.HwDrops;
  WatchdogTrips += RHS.WatchdogTrips;
  WatchdogWakes += RHS.WatchdogWakes;
  CorruptionsDetected += RHS.CorruptionsDetected;
  BackoffRetries += RHS.BackoffRetries;
  LivelockBreaks += RHS.LivelockBreaks;
  DemotedSyncs += RHS.DemotedSyncs;
  DemotedWaits += RHS.DemotedWaits;
  DegradedToSequential = DegradedToSequential || RHS.DegradedToSequential;
}

namespace {

unsigned log2OfPow2(unsigned V) {
  unsigned L = 0;
  while ((1u << L) < V)
    ++L;
  return L;
}

} // namespace

struct TLSSimulator::Impl {
  const MachineConfig &Config;
  const TLSSimOptions &Opts;

  // State persisting across region instances.
  CacheModel Caches;
  HwSyncTables HwTables;
  ValuePredictor Predictor;
  FaultInjector Faults; ///< Disabled (all draws false) without a plan.
  /// Per-group check.fwd outcome counters for the hybrid filter (iii),
  /// indexed by sync id: (total, hits). An all-zero entry is
  /// indistinguishable from "no history", which is exactly the reset the
  /// violation feedback path wants.
  std::vector<std::pair<uint64_t, uint64_t>> FwdChecks;

  // Per-region state (reset in simulateRegion).
  SpecState Spec;
  SyncChannels Channels;

  // Watchdog state, all per-region. Protected epochs take no further
  // injected faults (livelock break); demoted channels/groups stop
  // blocking at waits (graceful degradation to plain speculation).
  bool WatchdogOn = false;
  std::vector<unsigned> SquashCount;    ///< Indexed by epoch.
  std::vector<uint8_t> ProtectedEpochs; ///< Indexed by epoch.
  std::vector<unsigned> MemGroupTrips, ScalarTrips;           ///< By id.
  std::vector<uint8_t> DemotedMemGroups, DemotedScalarChannels; ///< By id.
  uint64_t TotalSquashes = 0;
  FaultCounts RegionStartCounts; ///< Injector totals at region entry.

  Impl(const MachineConfig &Config, const TLSSimOptions &Opts)
      : Config(Config), Opts(Opts), Caches(Config),
        HwTables(Config.NumCores, Config.HwSyncTableEntries,
                 Config.HwSyncResetInterval, Opts.HwSyncSharedTable),
        Predictor(Config.PredictorTableEntries),
        Faults(Opts.Faults ? FaultInjector(*Opts.Faults) : FaultInjector()),
        Spec(log2OfPow2(Config.CacheLineBytes)) {
    FaultInjector *FI = Faults.enabled() ? &Faults : nullptr;
    HwTables.setFaultInjector(FI);
    Predictor.setFaultInjector(FI);
  }

  bool isProtected(uint64_t Epoch) const {
    return Epoch < ProtectedEpochs.size() && ProtectedEpochs[Epoch];
  }

  bool isDemoted(int Id, bool IsMem) const {
    const std::vector<uint8_t> &D =
        IsMem ? DemotedMemGroups : DemotedScalarChannels;
    size_t I = static_cast<size_t>(Id);
    return I < D.size() && D[I];
  }

  // ----------------------------------------------------------------------
  struct EpochRun {
    uint64_t Epoch = 0;
    const EpochTrace *Trace = nullptr;
    size_t Idx = 0;
    uint64_t Cycle = 0;
    unsigned SlotsUsed = 0;
    uint64_t AttemptStart = 0;
    uint64_t BusyInsts = 0;
    uint64_t SyncScalarSlots = 0;
    uint64_t SyncMemSlots = 0;
    std::unordered_set<uint64_t> LocalWrites; ///< Word addresses.
    SignalAddressBuffer Sab;
    /// Signal dedup flags, indexed by channel / group id. Ascending index
    /// scans reproduce the ordered-set iteration they replace.
    std::vector<uint8_t> SignaledScalars;
    std::vector<uint8_t> SignaledGroups;
    /// check.fwd verdict per group id: 0 = no check yet, 1 = do not use
    /// the forward, 2 = use it.
    std::vector<int8_t> UseFwd;
    /// Cache line -> "read mark was made by a compiler-synchronized load",
    /// for Figure 11 attribution of this epoch's exposed reads.
    std::unordered_map<uint64_t, bool> LineMarkSynced;

    enum class St { Running, ParkedChannel, ParkedCommit, Finished };
    St State = St::Running;
    bool ParkIsMem = false;
    int ParkId = -1;                ///< Channel / group parked on.
    uint64_t ParkCommitTarget = 0;  ///< Epoch whose commit we await.
    uint64_t FinishCycle = 0;

    EpochRun(unsigned SabEntries) : Sab(SabEntries) {}
  };

  /// In-flight epochs. Epochs dispatch in ascending order and only the
  /// head ever leaves, so the active set is always the contiguous window
  /// [NextToCommit, NextToCommit + Active.size()) and a deque replaces the
  /// ordered map: find is an index subtraction and iteration is already in
  /// ascending-epoch order.
  std::deque<EpochRun> Active;
  std::vector<uint64_t> StartCycle; ///< First-dispatch time per epoch.
  uint64_t NextToCommit = 0;
  uint64_t NumEpochs = 0;
  uint64_t TokenFreeAt = 0; ///< When the homefree token is next available.
  const RegionTrace *Region = nullptr;
  TLSSimResult Stats;

  // Observability: epoch-timeline tracing (one track per core) and the
  // registry counters this simulator folds its per-region totals into.
  bool Tracing = false;
  uint64_t TBase = 0; ///< Trace-time offset of this region instance.
  // Causal event ledger (--events-out). The handle binds at construction
  // to the constructing thread's current ledger (per-cell under the
  // parallel experiment runner); EventsOn is re-cached per region so the
  // off path costs one predictable branch per emission site.
  obs::EventLog *Ev = &obs::EventLog::global();
  bool EventsOn = false;
  obs::Counter *CRegions = obs::StatRegistry::global().counter("sim.regions");
  obs::Counter *CRegionCycles =
      obs::StatRegistry::global().counter("sim.region_cycles");
  obs::Counter *CEpochs =
      obs::StatRegistry::global().counter("sim.epochs_committed");
  obs::Counter *CViolations =
      obs::StatRegistry::global().counter("sim.violations");
  obs::Counter *CSabViolations =
      obs::StatRegistry::global().counter("sim.sab_violations");
  obs::Counter *CSabOverflows =
      obs::StatRegistry::global().counter("sim.sab_overflows");
  obs::Counter *CPredictRestarts =
      obs::StatRegistry::global().counter("sim.predict_restarts");
  obs::Counter *CFilteredWaits =
      obs::StatRegistry::global().counter("sim.filtered_waits");
  obs::Gauge *GSabOccupancy =
      obs::StatRegistry::global().gauge("sim.sab_occupancy");
  obs::Counter *CFaultsInjected =
      obs::StatRegistry::global().counter("sim.fault.injected");
  obs::Counter *CWatchdogTrips =
      obs::StatRegistry::global().counter("sim.watchdog.trips");
  obs::Counter *CWatchdogWakes =
      obs::StatRegistry::global().counter("sim.watchdog.wakes");
  obs::Counter *CCorruptDetected =
      obs::StatRegistry::global().counter("sim.fault.corruptions_detected");
  obs::Counter *CBackoffRetries =
      obs::StatRegistry::global().counter("sim.watchdog.backoff_retries");
  obs::Counter *CLivelockBreaks =
      obs::StatRegistry::global().counter("sim.watchdog.livelock_breaks");
  obs::Counter *CDemotedSyncs =
      obs::StatRegistry::global().counter("sim.watchdog.demoted_syncs");
  obs::Counter *CDemotedWaits =
      obs::StatRegistry::global().counter("sim.watchdog.demoted_waits");
  obs::Counter *CDegradedRegions =
      obs::StatRegistry::global().counter("sim.watchdog.degraded_regions");

  unsigned width() const { return Config.IssueWidth; }

  EpochRun *activeFind(uint64_t Epoch) {
    if (Epoch < NextToCommit || Epoch >= NextToCommit + Active.size())
      return nullptr;
    return &Active[static_cast<size_t>(Epoch - NextToCommit)];
  }

  unsigned coreOf(const EpochRun &R) const {
    return static_cast<unsigned>(R.Epoch % Config.NumCores);
  }

  // --- Trace-event helpers ------------------------------------------------
  void traceSpan(const EpochRun &R, const char *Name, uint64_t Start,
                 uint64_t Dur, const char *ArgName = nullptr,
                 int64_t Arg = 0) {
    if (Tracing)
      obs::TraceLog::global().complete(coreOf(R), Name, "sim", TBase + Start,
                                       Dur, ArgName, Arg);
  }

  void traceInstant(const EpochRun &R, const char *Name, uint64_t At,
                    const char *ArgName = nullptr, int64_t Arg = 0) {
    if (Tracing)
      obs::TraceLog::global().instant(coreOf(R), Name, "sim", TBase + At,
                                      ArgName, Arg);
  }

  // --- Ledger helpers -----------------------------------------------------
  static obs::SpecEvent makeEvent(obs::EventKind K, uint64_t Cycle,
                                  uint64_t Epoch) {
    obs::SpecEvent E;
    E.Kind = static_cast<uint8_t>(K);
    E.Cycle = Cycle;
    E.Epoch = Epoch;
    return E;
  }

  void eventLifecycle(obs::EventKind K, uint64_t Cycle, uint64_t Epoch,
                      uint64_t Aux = 0) {
    if (!EventsOn)
      return;
    obs::SpecEvent E = makeEvent(K, Cycle, Epoch);
    E.Aux = Aux;
    Ev->push(E);
  }

  // --- Per-instruction slot helpers --------------------------------------
  void graduate(EpochRun &R) {
    if (R.SlotsUsed == width()) {
      ++R.Cycle;
      R.SlotsUsed = 0;
    }
    ++R.SlotsUsed;
    ++R.BusyInsts;
  }

  void stall(EpochRun &R, uint64_t Cycles) {
    if (Cycles == 0)
      return;
    R.Cycle += Cycles;
    R.SlotsUsed = 0;
  }

  void syncStall(EpochRun &R, uint64_t Cycles, bool IsMem, int SyncId) {
    if (Cycles == 0)
      return;
    traceSpan(R, IsMem ? "wait.mem" : "wait.scalar", R.Cycle, Cycles,
              "epoch", static_cast<int64_t>(R.Epoch));
    if (EventsOn) {
      obs::SpecEvent E =
          makeEvent(obs::EventKind::WaitStall, R.Cycle, R.Epoch);
      E.OtherEpoch = R.Epoch - 1; // Waits target the previous epoch.
      E.Aux = Cycles;
      E.SyncId = SyncId;
      E.Flags = IsMem ? obs::event_flags::kStallMem : 0;
      Ev->push(E);
    }
    stall(R, Cycles);
    if (IsMem)
      R.SyncMemSlots += Cycles * width();
    else
      R.SyncScalarSlots += Cycles * width();
  }

  // --- Epoch lifecycle ----------------------------------------------------
  void dispatch(uint64_t Epoch, uint64_t EarliestStart) {
    assert(Epoch < NumEpochs && "dispatching past the region");
    uint64_t SpawnReady =
        Epoch == 0 ? 0 : StartCycle[Epoch - 1] + Config.EpochSpawnOverhead;
    EpochRun R(Config.SignalAddrBufferEntries);
    R.Epoch = Epoch;
    R.Trace = &Region->Epochs[Epoch];
    R.Cycle = std::max(EarliestStart, SpawnReady);
    R.AttemptStart = R.Cycle;
    StartCycle[Epoch] = R.Cycle;
    eventLifecycle(obs::EventKind::EpochStart, R.Cycle, Epoch);
    assert(Epoch == NextToCommit + Active.size() &&
           "epochs must dispatch in ascending order");
    Active.push_back(std::move(R));
  }

  void resetAttempt(EpochRun &R, uint64_t RestartAt) {
    R.Idx = 0;
    R.Cycle = RestartAt;
    R.SlotsUsed = 0;
    R.AttemptStart = RestartAt;
    R.BusyInsts = 0;
    R.SyncScalarSlots = 0;
    R.SyncMemSlots = 0;
    R.LocalWrites.clear();
    R.Sab.clear();
    R.SignaledScalars.clear();
    R.SignaledGroups.clear();
    R.UseFwd.clear();
    R.LineMarkSynced.clear();
    R.State = EpochRun::St::Running;
  }

  /// Squashes epochs \p From and all later in-flight epochs at time \p Now.
  void squashFrom(uint64_t From, uint64_t Now) {
    for (EpochRun &R : Active) {
      const uint64_t E = R.Epoch;
      if (E < From)
        continue;
      uint64_t Wasted = Now > R.AttemptStart ? Now - R.AttemptStart : 0;
      Stats.Slots.Fail += Wasted * width();
      traceSpan(R, "squash", R.AttemptStart, Wasted, "epoch",
                static_cast<int64_t>(E));
      eventLifecycle(obs::EventKind::EpochSquash, Now, E, Wasted);
      Spec.clearEpoch(E);
      Channels.clearForConsumer(E + 1);
      uint64_t RestartAt = Now + Config.ViolationRestartPenalty;
      if (WatchdogOn) {
        unsigned N = ++SquashCount[E];
        ++TotalSquashes;
        if (N > 1) {
          // Bounded exponential backoff keeps repeated retries of the same
          // epoch from colliding with the faulting producer again.
          RestartAt += static_cast<uint64_t>(Opts.WatchdogBackoffBase)
                       << std::min(N - 2, 6u);
          ++Stats.BackoffRetries;
        }
        if (N >= Opts.EpochRetryLimit && !ProtectedEpochs[E]) {
          // Livelock break: this epoch takes no further injected faults,
          // so its next retry can only fail for real (workload) reasons.
          ProtectedEpochs[E] = 1;
          ++Stats.LivelockBreaks;
          traceInstant(R, "watchdog.protect", Now, "epoch",
                       static_cast<int64_t>(E));
        }
      }
      resetAttempt(R, RestartAt);
      eventLifecycle(obs::EventKind::EpochRestart, RestartAt, E);
    }
  }

  /// Handles a store by \p R hitting a line read by a later epoch.
  void checkStoreViolation(EpochRun &R, const DynInst &DI) {
    std::optional<ReadMark> Reader =
        Spec.findViolatedReader(DI.Addr, R.Epoch);
    if (!Reader)
      return;
    ++Stats.Violations;
    traceInstant(R, "violation", R.Cycle, "reader_epoch",
                 static_cast<int64_t>(Reader->Epoch));

    EpochRun *ReaderRun = activeFind(Reader->Epoch);
    assert(ReaderRun && "violated reader epoch is not in flight");
    bool CompilerWould =
        ReaderRun->LineMarkSynced
            .try_emplace(Spec.lineOf(DI.Addr), false)
            .first->second;
    bool HwWould = HwTables.containsAny(Reader->LoadStaticId, R.Cycle);
    if (CompilerWould && HwWould)
      ++Stats.ViolBoth;
    else if (CompilerWould)
      ++Stats.ViolCompilerOnly;
    else if (HwWould)
      ++Stats.ViolHwOnly;
    else
      ++Stats.ViolNeither;

    if (EventsOn) {
      // Full causality: violating store, victim load, address, line, and
      // the Figure 11 attribution verdict. Emitted before the squash so
      // stream order ties the EpochSquash records to this cause.
      obs::SpecEvent E =
          makeEvent(obs::EventKind::Violation, R.Cycle, R.Epoch);
      E.StaticId = DI.StaticId;
      E.Context = DI.Context;
      E.OtherEpoch = Reader->Epoch;
      E.OtherStaticId = Reader->LoadStaticId;
      E.OtherContext = Reader->LoadContext;
      E.SyncId = Reader->LoadSyncId;
      E.Addr = DI.Addr;
      E.Aux = Spec.lineOf(DI.Addr);
      E.Flags = (CompilerWould ? obs::event_flags::kCompilerWould : 0) |
                (HwWould ? obs::event_flags::kHwWould : 0);
      Ev->push(E);
    }

    // Negative feedback for the hybrid filter (iii): if a filtered
    // group's load just got violated, its synchronization was not useless
    // after all — forget the low match-rate history so waits resume.
    if (Opts.HybridFilterUselessSync && Reader->LoadSyncId >= 0 &&
        static_cast<size_t>(Reader->LoadSyncId) < FwdChecks.size())
      FwdChecks[Reader->LoadSyncId] = {0, 0};

    // The core that ran the violated epoch learns the load; a
    // compiler-hinted frequent violator survives periodic resets (iv).
    unsigned ReaderCore =
        static_cast<unsigned>(Reader->Epoch % Config.NumCores);
    bool Sticky = Opts.HybridStickyHints && CompilerWould;
    HwTables.recordViolation(ReaderCore, Reader->LoadStaticId, R.Cycle,
                             Sticky);
    // The squash takes effect when the invalidation reaches the reader.
    squashFrom(Reader->Epoch, R.Cycle + Config.ViolationDetectLatency);
  }

  bool isCompilerSyncedLoad(const DynInst &DI) const {
    if (DI.SyncId >= 0)
      return true;
    if (Opts.CompilerSyncSet &&
        Opts.CompilerSyncSet->count({DI.StaticId, DI.Context}))
      return true;
    return false;
  }

  bool isOracleImmune(const DynInst &DI) const {
    if (Opts.OraclePerfectMemory)
      return true;
    if (Opts.ImmuneLoads &&
        Opts.ImmuneLoads->count({DI.StaticId, DI.Context}))
      return true;
    return false;
  }

  bool isCommitted(uint64_t Epoch) const { return Epoch < NextToCommit; }

  // --- Parking / waking ---------------------------------------------------
  void parkOnChannel(EpochRun &R, int Id, bool IsMem) {
    R.State = EpochRun::St::ParkedChannel;
    R.ParkId = Id;
    R.ParkIsMem = IsMem;
  }

  void parkOnCommit(EpochRun &R, uint64_t TargetEpoch, bool IsMem) {
    if (isCommitted(TargetEpoch))
      return;
    R.State = EpochRun::St::ParkedCommit;
    R.ParkCommitTarget = TargetEpoch;
    R.ParkIsMem = IsMem;
  }

  void wake(EpochRun &R, uint64_t Arrival, bool IsMem) {
    uint64_t NewCycle = std::max(R.Cycle, Arrival);
    uint64_t Stalled = NewCycle - R.Cycle;
    if (Stalled)
      traceSpan(R, IsMem ? "wait.mem" : "wait.scalar", R.Cycle, Stalled,
                "epoch", static_cast<int64_t>(R.Epoch));
    if (EventsOn && Stalled) {
      obs::SpecEvent E = makeEvent(obs::EventKind::WaitStall, R.Cycle, R.Epoch);
      E.Aux = Stalled;
      E.Flags = IsMem ? obs::event_flags::kStallMem : 0;
      if (R.State == EpochRun::St::ParkedCommit) {
        E.OtherEpoch = R.ParkCommitTarget;
        E.Flags |= obs::event_flags::kStallCommit;
      } else {
        E.OtherEpoch = R.Epoch - 1;
        E.SyncId = R.ParkId;
      }
      Ev->push(E);
    }
    if (IsMem)
      R.SyncMemSlots += Stalled * width();
    else
      R.SyncScalarSlots += Stalled * width();
    R.Cycle = NewCycle;
    R.SlotsUsed = 0;
    R.State = EpochRun::St::Running;
  }

  void tryWakeChannelWaiters(uint64_t Epoch, uint64_t /*Now*/) {
    EpochRun *RP = activeFind(Epoch);
    if (!RP)
      return;
    EpochRun &R = *RP;
    if (R.State != EpochRun::St::ParkedChannel)
      return;
    if (R.ParkIsMem) {
      if (auto F = Channels.getMem(R.ParkId, Epoch))
        wake(R, F->ArrivalCycle, /*IsMem=*/true);
    } else {
      if (auto F = Channels.getScalar(R.ParkId, Epoch))
        wake(R, F->ArrivalCycle, /*IsMem=*/false);
    }
  }

  // --- Commit -------------------------------------------------------------
  void commitHead() {
    assert(!Active.empty() && "committing with no epoch in flight");
    EpochRun &R = Active.front();
    assert(R.Epoch == NextToCommit && "head epoch mismatch");
    assert(R.State == EpochRun::St::Finished && "committing unfinished epoch");
    uint64_t CommitStart = std::max(R.FinishCycle, TokenFreeAt);
    uint64_t CommitEnd = CommitStart + Config.CommitLatency;
    TokenFreeAt = CommitEnd;

    // Timeline: the successful attempt's span plus the commit handoff.
    traceSpan(R, "epoch", R.AttemptStart,
              R.FinishCycle > R.AttemptStart ? R.FinishCycle - R.AttemptStart
                                             : 0,
              "epoch", static_cast<int64_t>(R.Epoch));
    traceSpan(R, "commit", CommitStart, Config.CommitLatency, "epoch",
              static_cast<int64_t>(R.Epoch));

    // Fold attempt statistics.
    Stats.Slots.Busy += R.BusyInsts;
    Stats.Slots.SyncScalar += R.SyncScalarSlots;
    Stats.Slots.SyncMem += R.SyncMemSlots;
    Stats.SabMaxOccupancy =
        std::max<uint64_t>(Stats.SabMaxOccupancy, R.Sab.size());
    ++Stats.EpochsCommitted;

    if (EventsOn) {
      // Addr carries the finish cycle so the analyses can separate commit
      // serialization (CommitStart - Finish) from the commit latency.
      obs::SpecEvent E =
          makeEvent(obs::EventKind::EpochCommit, CommitStart, R.Epoch);
      E.Addr = R.FinishCycle;
      E.Aux = CommitEnd;
      Ev->push(E);
    }

    uint64_t E = R.Epoch;

    // Auto-signals: any channel/group this epoch never signaled forwards at
    // commit time (the paper's epoch-end NULL signal for memory groups; for
    // scalars the committed value is architecturally visible).
    for (unsigned Ch = 0; Ch < Opts.NumScalarChannels; ++Ch)
      if (!(Ch < R.SignaledScalars.size() && R.SignaledScalars[Ch]))
        Channels.sendScalar(static_cast<int>(Ch), E + 1, CommitEnd);
    for (unsigned G = 0; G < Opts.NumMemGroups; ++G)
      if (!(G < R.SignaledGroups.size() && R.SignaledGroups[G]))
        Channels.sendMem(static_cast<int>(G), E + 1, /*Addr=*/0, /*Value=*/0,
                         CommitEnd);

    Spec.clearEpoch(E);
    Active.pop_front();
    ++NextToCommit;
    Channels.collectUpTo(E);

    // Wake successors blocked on this commit or on the auto-signals.
    for (EpochRun &OR : Active) {
      if (OR.State == EpochRun::St::ParkedCommit && OR.ParkCommitTarget <= E)
        wake(OR, CommitEnd, OR.ParkIsMem);
    }
    tryWakeChannelWaiters(E + 1, CommitEnd);

    // The freed core picks up the next epoch.
    uint64_t Next = E + Config.NumCores;
    if (Next < NumEpochs)
      dispatch(Next, CommitEnd);
  }

  // --- Instruction execution ----------------------------------------------
  /// Executes the next instruction of \p R. May park, squash or finish.
  void step(EpochRun &R) {
    assert(R.State == EpochRun::St::Running && "stepping a non-running epoch");
    if (R.Idx >= R.Trace->Insts.size()) {
      R.FinishCycle = R.Cycle + (R.SlotsUsed > 0 ? 1 : 0);
      R.State = EpochRun::St::Finished;
      return;
    }
    const DynInst &DI = R.Trace->Insts[R.Idx];
    unsigned Core = static_cast<unsigned>(R.Epoch % Config.NumCores);

    switch (DI.Op) {
    case Opcode::WaitScalar: {
      if (R.Epoch == 0) {
        graduate(R);
        break;
      }
      if (WatchdogOn && isDemoted(DI.SyncId, /*IsMem=*/false)) {
        ++Stats.DemotedWaits; // Demoted: plain speculation, no blocking.
        graduate(R);
        break;
      }
      auto F = Channels.getScalar(DI.SyncId, R.Epoch);
      if (!F) {
        parkOnChannel(R, DI.SyncId, /*IsMem=*/false);
        return; // Re-executed after wake.
      }
      graduate(R);
      if (F->ArrivalCycle > R.Cycle)
        syncStall(R, F->ArrivalCycle - R.Cycle, /*IsMem=*/false, DI.SyncId);
      break;
    }

    case Opcode::WaitMem: {
      if (Opts.PerfectSyncedValues || Opts.OraclePerfectMemory) {
        graduate(R); // E: the consumer predicts the value perfectly.
        break;
      }
      if (Opts.StallSyncedUntilDone) {
        // L: conservative scheme — wait until the previous epoch commits.
        if (R.Epoch > 0 && !isCommitted(R.Epoch - 1)) {
          parkOnCommit(R, R.Epoch - 1, /*IsMem=*/true);
          if (R.State == EpochRun::St::ParkedCommit)
            return;
        }
        graduate(R);
        break;
      }
      if (R.Epoch == 0) {
        graduate(R);
        break;
      }
      if (WatchdogOn && isDemoted(DI.SyncId, /*IsMem=*/true)) {
        ++Stats.DemotedWaits;
        graduate(R);
        break;
      }
      if (Opts.HybridFilterUselessSync) {
        // (iii) The hardware filters compiler synchronization that rarely
        // forwards a useful value: once enough check.fwd outcomes show a
        // low match rate, waits on this group proceed speculatively.
        size_t Id = static_cast<size_t>(DI.SyncId);
        if (Id < FwdChecks.size() && FwdChecks[Id].first >= 32 &&
            FwdChecks[Id].second * 4 < FwdChecks[Id].first) {
          ++Stats.FilteredWaits;
          graduate(R);
          break;
        }
      }
      auto F = Channels.getMem(DI.SyncId, R.Epoch);
      if (!F) {
        parkOnChannel(R, DI.SyncId, /*IsMem=*/true);
        return;
      }
      graduate(R);
      if (F->ArrivalCycle > R.Cycle)
        syncStall(R, F->ArrivalCycle - R.Cycle, /*IsMem=*/true, DI.SyncId);
      break;
    }

    case Opcode::CheckFwd: {
      graduate(R);
      bool Use = false;
      if (!Opts.StallSyncedUntilDone && !Opts.PerfectSyncedValues &&
          R.Epoch > 0) {
        if (auto F = Channels.getMem(DI.SyncId, R.Epoch))
          Use = F->Addr != 0 && F->Addr == DI.Addr;
      }
      size_t Id = static_cast<size_t>(DI.SyncId);
      if (Id >= R.UseFwd.size())
        R.UseFwd.resize(Id + 1, 0);
      R.UseFwd[Id] = Use ? 2 : 1;
      if (Id >= FwdChecks.size())
        FwdChecks.resize(Id + 1, {0, 0});
      auto &Counts = FwdChecks[Id];
      ++Counts.first;
      if (Use)
        ++Counts.second;
      break;
    }

    case Opcode::SelectFwd:
      graduate(R);
      break;

    case Opcode::SignalScalar: {
      graduate(R);
      size_t Id = static_cast<size_t>(DI.SyncId);
      if (Id >= R.SignaledScalars.size())
        R.SignaledScalars.resize(Id + 1, 0);
      if (!R.SignaledScalars[Id]) {
        R.SignaledScalars[Id] = 1;
        Channels.sendScalar(DI.SyncId, R.Epoch + 1,
                            R.Cycle + Config.SignalLatency);
        traceInstant(R, "signal.scalar", R.Cycle, "channel", DI.SyncId);
        tryWakeChannelWaiters(R.Epoch + 1, R.Cycle);
      }
      break;
    }

    case Opcode::SignalMem: {
      graduate(R);
      size_t Id = static_cast<size_t>(DI.SyncId);
      if (Id >= R.SignaledGroups.size())
        R.SignaledGroups.resize(Id + 1, 0);
      if (R.SignaledGroups[Id])
        break; // At most one signal per group per epoch reaches the wire.
      R.SignaledGroups[Id] = 1;
      Channels.sendMem(DI.SyncId, R.Epoch + 1, DI.Addr, DI.Value,
                       R.Cycle + Config.SignalLatency);
      traceInstant(R, "signal.mem", R.Cycle, "group", DI.SyncId);
      if (DI.Addr != 0 && !R.Sab.recordSignal(DI.SyncId, DI.Addr))
        ++Stats.SabOverflows;
      tryWakeChannelWaiters(R.Epoch + 1, R.Cycle);
      break;
    }

    case Opcode::Load: {
      // Hardware-inserted synchronization: a load known to violate stalls
      // until the previous epoch completes.
      if (Opts.HwSyncStall && R.Epoch > 0 &&
          HwTables.contains(Core, DI.StaticId, R.Cycle) &&
          !isCommitted(R.Epoch - 1)) {
        parkOnCommit(R, R.Epoch - 1, /*IsMem=*/true);
        return;
      }

      bool Immune = isOracleImmune(DI);

      // Compiler-forwarded value: use it when the checked address matched
      // and the location was not overwritten locally since.
      bool SyncedLoad = DI.SyncId >= 0;
      if (SyncedLoad && (Opts.PerfectSyncedValues))
        Immune = true;
      if (SyncedLoad && !Immune) {
        size_t Id = static_cast<size_t>(DI.SyncId);
        if (Id < R.UseFwd.size() && R.UseFwd[Id] == 2 &&
            conflict::exposedRead(R.LocalWrites, DI.Addr)) {
          if (WatchdogOn) {
            // An injected in-flight corruption is caught here, where the
            // load consumes the forward: the check hardware refetches the
            // true value and squashes this epoch to retry cleanly.
            auto F = Channels.getMem(DI.SyncId, R.Epoch);
            if (F && F->Corrupted) {
              Channels.clearCorrupted(DI.SyncId, R.Epoch);
              ++Stats.CorruptionsDetected;
              traceInstant(R, "fault.corrupt_detected", R.Cycle, "group",
                           DI.SyncId);
              if (EventsOn) {
                obs::SpecEvent E = makeEvent(obs::EventKind::CorruptDetected,
                                             R.Cycle, R.Epoch);
                E.StaticId = DI.StaticId;
                E.Context = DI.Context;
                E.Addr = DI.Addr;
                E.SyncId = DI.SyncId;
                Ev->push(E);
              }
              if (!isProtected(R.Epoch)) {
                squashFrom(R.Epoch, R.Cycle + Config.ViolationDetectLatency);
                return; // R was reset; the epoch re-executes.
              }
            }
          }
          Immune = true; // Reads the forwarded value; cannot be violated.
          R.UseFwd[Id] = 1;
        }
      }

      // Hardware value prediction for known-violating loads.
      if (Opts.HwValuePredict && !Immune &&
          HwTables.contains(Core, DI.StaticId, R.Cycle)) {
        ValuePredictor::Outcome O = Predictor.predictAndTrain(
            DI.StaticId, DI.Value, /*AllowFault=*/!isProtected(R.Epoch));
        if (O == ValuePredictor::Outcome::CorrectConfident) {
          ++Stats.PredictorCorrect;
          Immune = true;
        } else if (O == ValuePredictor::Outcome::WrongConfident) {
          ++Stats.PredictorWrong;
          ++Stats.PredictRestarts;
          if (EventsOn) {
            obs::SpecEvent E = makeEvent(obs::EventKind::PredictRestart,
                                         R.Cycle, R.Epoch);
            E.StaticId = DI.StaticId;
            E.Context = DI.Context;
            E.Addr = DI.Addr;
            Ev->push(E);
          }
          squashFrom(R.Epoch, R.Cycle);
          return; // R was reset; the epoch re-executes.
        }
      }

      graduate(R);
      unsigned Lat = Caches.accessLatency(Core, DI.Addr);
      if (Lat > Config.L1HitLatency)
        stall(R, Lat);

      bool Exposed = conflict::exposedRead(R.LocalWrites, DI.Addr);
      if (Exposed && !Immune) {
        Spec.markRead(DI.Addr, R.Epoch, DI.StaticId, DI.Context,
                      DI.SyncId, R.Cycle);
        // First reader wins, matching SpecState's mark (attribution keys on
        // the load that established the mark).
        R.LineMarkSynced.emplace(Spec.lineOf(DI.Addr),
                                 isCompilerSyncedLoad(DI));
      }
      break;
    }

    case Opcode::Store: {
      graduate(R);
      unsigned Lat = Caches.accessLatency(Core, DI.Addr);
      if (Lat > Config.L1HitLatency)
        stall(R, Lat);

      // Signaled-then-overwritten hazard: restart the consumer (or fix up
      // the forward in place if the consumer has not started).
      if (!Opts.OraclePerfectMemory && R.Sab.conflictsWithStore(DI.Addr)) {
        if (activeFind(R.Epoch + 1)) {
          ++Stats.SabViolations;
          traceInstant(R, "sab_violation", R.Cycle, "epoch",
                       static_cast<int64_t>(R.Epoch));
          if (EventsOn) {
            obs::SpecEvent E = makeEvent(obs::EventKind::SabViolation,
                                         R.Cycle, R.Epoch);
            E.OtherEpoch = R.Epoch + 1;
            E.StaticId = DI.StaticId;
            E.Context = DI.Context;
            E.Addr = DI.Addr;
            Ev->push(E);
          }
          squashFrom(R.Epoch + 1, R.Cycle + Config.ViolationDetectLatency);
          // The squashed consumer will re-wait; refresh the forward.
        }
        for (size_t G = 0; G < R.SignaledGroups.size(); ++G)
          if (R.SignaledGroups[G])
            if (auto F = Channels.getMem(static_cast<int>(G), R.Epoch + 1))
              if (F->Addr == DI.Addr)
                Channels.updateMemValue(static_cast<int>(G), R.Epoch + 1,
                                        DI.Addr, DI.Value);
      }

      R.LocalWrites.insert(DI.Addr);
      // A privatized store writes a provably epoch-local (or false-shared)
      // location into the epoch's speculative buffer: it still covers the
      // epoch's own later reads, but can never violate a later epoch's
      // read mark. Mirrors the rt engine's write-summary exclusion.
      if (!Opts.OraclePerfectMemory &&
          DI.Remedy != static_cast<uint8_t>(RemedyKind::Privatize))
        checkStoreViolation(R, DI);

      // Injected spurious violation: the coherence logic wrongly reports
      // this store as conflicting with the next epoch's reads. Recovery is
      // the ordinary squash-and-retry; protected epochs are spared so
      // injection cannot livelock an epoch past its retry limit.
      if (Faults.enabled() && !Opts.OraclePerfectMemory) {
        uint64_t Victim = R.Epoch + 1;
        if (activeFind(Victim) && !isProtected(Victim) &&
            Faults.spuriousViolation()) {
          traceInstant(R, "fault.spurious_violation", R.Cycle, "victim",
                       static_cast<int64_t>(Victim));
          if (EventsOn) {
            obs::SpecEvent E = makeEvent(obs::EventKind::SpuriousViolation,
                                         R.Cycle, R.Epoch);
            E.OtherEpoch = Victim;
            E.StaticId = DI.StaticId;
            E.Context = DI.Context;
            E.Addr = DI.Addr;
            Ev->push(E);
          }
          squashFrom(Victim, R.Cycle + Config.ViolationDetectLatency);
        }
      }
      break;
    }

    case Opcode::Reduce:
      // Reduction expansion: a per-epoch partial accumulation the commit
      // folds into memory. The matcher proved no other reference aliases
      // the location, so the access neither marks a read nor checks for
      // store violations — it only pays one memory access of timing.
      graduate(R);
      if (unsigned Lat = Caches.accessLatency(Core, DI.Addr);
          Lat > Config.L1HitLatency)
        stall(R, Lat);
      break;

    case Opcode::Div:
    case Opcode::Mod:
      graduate(R);
      stall(R, Config.IntDivLatency);
      break;

    default:
      graduate(R);
      break;
    }

    ++R.Idx;
  }

  // --- Watchdog recovery ----------------------------------------------------
  /// Called when no epoch is runnable. The head epoch is never parked on a
  /// commit (checked at park time), so a total stall means some epoch waits
  /// on a channel whose signal was lost. Wake the earliest such epoch with
  /// a synthetic (trusted) NULL signal; per-channel backoff grows with each
  /// trip, and a channel that keeps tripping is demoted to plain
  /// speculation so later waits stop blocking at all.
  bool recoverFromDeadlock() {
    for (EpochRun &R : Active) {
      const uint64_t E = R.Epoch;
      if (R.State != EpochRun::St::ParkedChannel)
        continue;
      ++Stats.WatchdogTrips;
      std::vector<unsigned> &TripVec =
          R.ParkIsMem ? MemGroupTrips : ScalarTrips;
      size_t Id = static_cast<size_t>(R.ParkId);
      if (Id >= TripVec.size())
        TripVec.resize(Id + 1, 0);
      unsigned &Trips = TripVec[Id];
      ++Trips;
      uint64_t Backoff = static_cast<uint64_t>(Opts.WatchdogBackoffBase)
                         << std::min(Trips - 1, 6u);
      uint64_t Arrival = R.Cycle + Backoff;
      traceInstant(R, "watchdog.wake", R.Cycle,
                   R.ParkIsMem ? "group" : "channel", R.ParkId);
      if (EventsOn) {
        obs::SpecEvent EV =
            makeEvent(obs::EventKind::WatchdogWake, R.Cycle, E);
        EV.Aux = Arrival;
        EV.SyncId = R.ParkId;
        EV.Flags = R.ParkIsMem ? obs::event_flags::kStallMem : 0;
        Ev->push(EV);
      }
      if (R.ParkIsMem)
        Channels.sendMem(R.ParkId, E, /*Addr=*/0, /*Value=*/0, Arrival,
                         /*Faultable=*/false);
      else
        Channels.sendScalar(R.ParkId, E, Arrival, /*Faultable=*/false);
      ++Stats.WatchdogWakes;
      if (Trips >= Opts.GroupDemoteThreshold) {
        std::vector<uint8_t> &Demoted =
            R.ParkIsMem ? DemotedMemGroups : DemotedScalarChannels;
        if (Id >= Demoted.size())
          Demoted.resize(Id + 1, 0);
        if (!Demoted[Id]) {
          Demoted[Id] = 1;
          ++Stats.DemotedSyncs;
          traceInstant(R, "watchdog.demote", R.Cycle,
                       R.ParkIsMem ? "group" : "channel", R.ParkId);
        }
      }
      tryWakeChannelWaiters(E, Arrival);
      return true;
    }
    return false;
  }

  /// Degradation triggers: the region blew its cycle budget, or faults are
  /// squashing faster than retries converge. The harness substitutes the
  /// sequential baseline for a degraded region.
  bool shouldDegrade(uint64_t Now) const {
    if (Opts.WatchdogBudget && Now > Opts.WatchdogBudget)
      return true;
    if (Opts.DegradeSquashRate > 0 && NumEpochs > 0 &&
        static_cast<double>(TotalSquashes) >
            Opts.DegradeSquashRate * static_cast<double>(NumEpochs))
      return true;
    return false;
  }

  // --- Region driver --------------------------------------------------------
  TLSSimResult run(const RegionTrace &RT) {
    Stats = TLSSimResult();
    Region = &RT;
    NumEpochs = RT.Epochs.size();
    Active.clear();
    StartCycle.assign(NumEpochs, 0);
    NextToCommit = 0;
    TokenFreeAt = 0;
    Spec = SpecState(log2OfPow2(Config.CacheLineBytes), Opts.Pads);
    Channels = SyncChannels();
    Channels.setFaultInjector(Faults.enabled() ? &Faults : nullptr);
    WatchdogOn = Faults.enabled() || Opts.WatchdogBudget > 0 ||
                 Opts.DegradeSquashRate > 0;
    SquashCount.assign(NumEpochs, 0);
    ProtectedEpochs.assign(NumEpochs, 0);
    MemGroupTrips.clear();
    ScalarTrips.clear();
    DemotedMemGroups.clear();
    DemotedScalarChannels.clear();
    TotalSquashes = 0;
    RegionStartCounts = Faults.counts();

    obs::TraceLog &TL = obs::TraceLog::global();
    Tracing = TL.active();
    if (Tracing) {
      TBase = TL.timeBase();
      for (unsigned C = 0; C < Config.NumCores; ++C)
        TL.nameThread(TL.currentPid(), C, "core " + std::to_string(C));
    }
    EventsOn = Ev->active();
    if (EventsOn) {
      Ev->beginRegion();
      eventLifecycle(obs::EventKind::RegionBegin, 0, 0, NumEpochs);
    }

    if (NumEpochs == 0) {
      eventLifecycle(obs::EventKind::RegionEnd, 0, 0);
      return Stats;
    }

    for (uint64_t E = 0; E < std::min<uint64_t>(NumEpochs, Config.NumCores);
         ++E)
      dispatch(E, 0);

    while (NextToCommit < NumEpochs) {
      // Commit the head as soon as it is done.
      assert(!Active.empty() && "head epoch is not in flight");
      if (Active.front().State == EpochRun::St::Finished) {
        commitHead();
        continue;
      }

      // Step the runnable epoch with the smallest local clock.
      EpochRun *Min = nullptr;
      for (EpochRun &R : Active)
        if (R.State == EpochRun::St::Running &&
            (!Min || R.Cycle < Min->Cycle))
          Min = &R;
      if (!Min && WatchdogOn && recoverFromDeadlock())
        continue; // A parked epoch was force-woken; rescan.
      assert(Min && "all in-flight epochs blocked: scheduling deadlock");
      if (!Min || Min->Cycle > Opts.MaxCycles) {
        Stats.Completed = false;
        break;
      }
      if (WatchdogOn && shouldDegrade(Min->Cycle)) {
        Stats.DegradedToSequential = true;
        Stats.Completed = false;
        traceInstant(*Min, "watchdog.degrade", Min->Cycle, "epoch",
                     static_cast<int64_t>(Min->Epoch));
        break;
      }
      step(*Min);
    }

    Stats.Cycles = TokenFreeAt;
    Stats.Slots.Total =
        Stats.Cycles * Config.IssueWidth * Config.NumCores;
    Stats.HwTableResets = HwTables.numResets();
    eventLifecycle(obs::EventKind::RegionEnd, TokenFreeAt, 0);

    // Injector totals accumulate across regions; report this region's share.
    const FaultCounts &FC = Faults.counts();
    Stats.Faults.SignalDrops = FC.SignalDrops - RegionStartCounts.SignalDrops;
    Stats.Faults.SignalDelays =
        FC.SignalDelays - RegionStartCounts.SignalDelays;
    Stats.Faults.Corruptions = FC.Corruptions - RegionStartCounts.Corruptions;
    Stats.Faults.Mispredicts = FC.Mispredicts - RegionStartCounts.Mispredicts;
    Stats.Faults.SpuriousViolations =
        FC.SpuriousViolations - RegionStartCounts.SpuriousViolations;
    Stats.Faults.HwDrops = FC.HwDrops - RegionStartCounts.HwDrops;

    if (Tracing) // Later regions stack after this one on the timeline.
      TL.advanceTimeBase(Stats.Cycles + 1);
    if (obs::statsEnabled()) {
      CRegions->add(1);
      CRegionCycles->add(Stats.Cycles);
      CEpochs->add(Stats.EpochsCommitted);
      CViolations->add(Stats.Violations);
      CSabViolations->add(Stats.SabViolations);
      CSabOverflows->add(Stats.SabOverflows);
      CPredictRestarts->add(Stats.PredictRestarts);
      CFilteredWaits->add(Stats.FilteredWaits);
      GSabOccupancy->set(static_cast<int64_t>(Stats.SabMaxOccupancy));
      if (WatchdogOn) {
        CFaultsInjected->add(Stats.Faults.total());
        CWatchdogTrips->add(Stats.WatchdogTrips);
        CWatchdogWakes->add(Stats.WatchdogWakes);
        CCorruptDetected->add(Stats.CorruptionsDetected);
        CBackoffRetries->add(Stats.BackoffRetries);
        CLivelockBreaks->add(Stats.LivelockBreaks);
        CDemotedSyncs->add(Stats.DemotedSyncs);
        CDemotedWaits->add(Stats.DemotedWaits);
        if (Stats.DegradedToSequential)
          CDegradedRegions->add(1);
      }
    }
    return Stats;
  }
};

TLSSimulator::TLSSimulator(const MachineConfig &Config,
                           const TLSSimOptions &Opts)
    : PImpl(std::make_unique<Impl>(Config, Opts)) {}

TLSSimulator::~TLSSimulator() = default;

TLSSimResult TLSSimulator::simulateRegion(const RegionTrace &Region) {
  return PImpl->run(Region);
}
