//===- sim/FaultInjector.h - Deterministic fault injection ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for the TLS pipeline. A FaultPlan
/// describes *what* can go wrong and how often; a FaultInjector draws from
/// its own PRNG stream (independent of workload randomness — see
/// Random::stream) to decide *when* each fault fires, so a given
/// (plan, trace) pair replays exactly.
///
/// Fault classes:
///  - drop: a wait/signal forward is lost on the wire (the consumer would
///    deadlock without the simulator's watchdog);
///  - delay: a forward arrives late by a fixed number of cycles;
///  - corrupt: a forwarded (addr, value) pair is damaged in flight — the
///    consumer's hardware detects the mismatch at use time and recovers by
///    squash-and-retry (the timing simulator never holds architectural
///    state, so corruption is modeled as a detectable recoverable event);
///  - mispredict: a confident value prediction is forced wrong;
///  - spurious violation: the coherence logic reports a dependence
///    violation that never happened;
///  - hw drop: a violating-load table update is lost.
///
/// The injector also carries the watchdog/recovery knobs (RobustnessOptions)
/// shared by the bench binaries' --fault-* / --watchdog-* flags.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_FAULTINJECTOR_H
#define SPECSYNC_SIM_FAULTINJECTOR_H

#include "support/Random.h"

#include <cstdint>

namespace specsync {

namespace obs {
class EventLog;
} // namespace obs

/// What to inject and how often. All rates are percentages in [0, 100] of
/// the corresponding events (signal sends, confident predictions, stores,
/// table updates). A default-constructed plan injects nothing.
struct FaultPlan {
  uint64_t Seed = 0; ///< Fault-stream seed (independent of workload seeds).

  double SignalDropPct = 0.0;    ///< Scalar/memory forward lost.
  double SignalDelayPct = 0.0;   ///< Forward arrives late.
  uint64_t SignalDelayCycles = 64; ///< Lateness applied to delayed forwards.
  double SignalCorruptPct = 0.0; ///< Memory forward damaged in flight.
  double MispredictPct = 0.0;    ///< Confident value prediction forced wrong.
  double SpuriousViolationPct = 0.0; ///< False dependence violation per store.
  double HwUpdateDropPct = 0.0;  ///< Violating-load table update lost.

  // Thread-targeted faults, fired only by the real-threads backend
  // (src/rt/). Deliberately excluded from enabled(): they must not flip
  // RobustnessOptions::active() and perturb the timing-simulator paths.
  double RtDelayedCommitPct = 0.0; ///< Commit of the head epoch is delayed.
  uint64_t RtDelayedCommitMicros = 200; ///< Sleep applied per delayed commit.
  double RtSpuriousAbortPct = 0.0; ///< Head attempt aborted pre-validation.
  double RtStalledWorkerPct = 0.0; ///< Worker sleeps before its attempt.
  uint64_t RtStallMicros = 500;    ///< Sleep applied per stalled worker.

  bool enabled() const {
    return SignalDropPct > 0 || SignalDelayPct > 0 || SignalCorruptPct > 0 ||
           MispredictPct > 0 || SpuriousViolationPct > 0 ||
           HwUpdateDropPct > 0;
  }

  /// True when any thread-targeted (rt) fault class can fire.
  bool rtEnabled() const {
    return RtDelayedCommitPct > 0 || RtSpuriousAbortPct > 0 ||
           RtStalledWorkerPct > 0;
  }

  /// A plan injecting every fault class at \p RatePct (the --fault-rate
  /// sweep shape).
  static FaultPlan uniform(uint64_t Seed, double RatePct);
};

/// Field-wise equality (experiment-runner replay matching).
inline bool operator==(const FaultPlan &A, const FaultPlan &B) {
  return A.Seed == B.Seed && A.SignalDropPct == B.SignalDropPct &&
         A.SignalDelayPct == B.SignalDelayPct &&
         A.SignalDelayCycles == B.SignalDelayCycles &&
         A.SignalCorruptPct == B.SignalCorruptPct &&
         A.MispredictPct == B.MispredictPct &&
         A.SpuriousViolationPct == B.SpuriousViolationPct &&
         A.HwUpdateDropPct == B.HwUpdateDropPct &&
         A.RtDelayedCommitPct == B.RtDelayedCommitPct &&
         A.RtDelayedCommitMicros == B.RtDelayedCommitMicros &&
         A.RtSpuriousAbortPct == B.RtSpuriousAbortPct &&
         A.RtStalledWorkerPct == B.RtStalledWorkerPct &&
         A.RtStallMicros == B.RtStallMicros;
}
inline bool operator!=(const FaultPlan &A, const FaultPlan &B) {
  return !(A == B);
}

/// Per-class injection counts (what actually fired, not the plan).
struct FaultCounts {
  uint64_t SignalDrops = 0;
  uint64_t SignalDelays = 0;
  uint64_t Corruptions = 0;
  uint64_t Mispredicts = 0;
  uint64_t SpuriousViolations = 0;
  uint64_t HwDrops = 0;
  // Thread-targeted classes (real-threads backend only; always zero on the
  // timing-simulator paths, keeping their reports byte-identical).
  uint64_t DelayedCommits = 0;
  uint64_t SpuriousAborts = 0;
  uint64_t WorkerStalls = 0;

  uint64_t total() const {
    return SignalDrops + SignalDelays + Corruptions + Mispredicts +
           SpuriousViolations + HwDrops + DelayedCommits + SpuriousAborts +
           WorkerStalls;
  }
};

/// Draws fault decisions from the plan. One injector per simulator; its
/// counts accumulate across region instances of one run.
class FaultInjector {
public:
  FaultInjector() = default; ///< Disabled: every draw returns false.
  explicit FaultInjector(const FaultPlan &Plan);

  bool enabled() const { return Enabled; }
  bool rtEnabled() const { return RtEnabled; }
  const FaultPlan &plan() const { return Plan; }
  const FaultCounts &counts() const { return Counts; }

  // Each query consumes at most one PRNG draw (none when the class rate is
  // zero), so disabling one fault class never shifts another's schedule
  // pattern more than the removed draws themselves.
  bool dropSignal();
  /// Returns the delay in cycles (0 = on time).
  uint64_t delaySignal();
  bool corruptForward();
  bool forceMispredict();
  bool spuriousViolation();
  bool dropHwUpdate();

  // Thread-targeted queries (real-threads backend). Rolled only by the rt
  // coordinator thread — the injector is not thread-safe; worker-visible
  // decisions are pre-rolled at dispatch and handed to the attempt.
  bool delayCommit();
  bool spuriousAbort();
  bool stallWorker();

private:
  bool roll(double Pct, uint64_t &Count);
  bool rollRt(double Pct, uint64_t &Count);
  void noteFired(uint8_t Class);

  bool Enabled = false;
  bool RtEnabled = false;
  FaultPlan Plan;
  Random Rng{0};
  FaultCounts Counts;
  /// Causal ledger, bound at construction (default ctor never fires, so
  /// a null handle is fine there).
  obs::EventLog *Ev = nullptr;
};

/// The recovery knobs that pair with a FaultPlan: watchdog budget,
/// retry/backoff limits, and the degradation thresholds. Defaults keep the
/// simulator's behavior bit-identical to a build without this subsystem.
struct RobustnessOptions {
  FaultPlan Plan;

  /// Per-region cycle budget; past it the region degrades to the
  /// sequential fallback instead of dying on MaxCycles. 0 = off.
  uint64_t WatchdogBudget = 0;
  /// Base backoff (cycles) for watchdog wakes and repeated squashes of the
  /// same epoch; doubles per retry, capped at base << 6.
  unsigned WatchdogBackoffBase = 32;
  /// Squashes of one epoch attempt before the epoch is "protected" (no
  /// further faults target it), breaking injected livelocks.
  unsigned EpochRetryLimit = 8;
  /// Watchdog trips on one channel/group before it is demoted to plain
  /// speculation (waits on it stop blocking).
  unsigned GroupDemoteThreshold = 3;
  /// Average squashes per epoch beyond which the region degrades to the
  /// sequential fallback. 0 = off.
  double DegradeSquashRate = 0.0;

  bool active() const { return Plan.enabled() || WatchdogBudget > 0; }
};

inline bool operator==(const RobustnessOptions &A,
                       const RobustnessOptions &B) {
  return A.Plan == B.Plan && A.WatchdogBudget == B.WatchdogBudget &&
         A.WatchdogBackoffBase == B.WatchdogBackoffBase &&
         A.EpochRetryLimit == B.EpochRetryLimit &&
         A.GroupDemoteThreshold == B.GroupDemoteThreshold &&
         A.DegradeSquashRate == B.DegradeSquashRate;
}
inline bool operator!=(const RobustnessOptions &A,
                       const RobustnessOptions &B) {
  return !(A == B);
}

/// Parses --fault-seed=N, --fault-rate=P, --fault-drop=P, --fault-delay=P,
/// --fault-delay-cycles=N, --fault-corrupt=P, --fault-mispredict=P,
/// --fault-spurious=P, --fault-hw-drop=P, --fault-rt-delay-commit=P,
/// --fault-rt-delay-micros=N, --fault-rt-spurious-abort=P,
/// --fault-rt-stall-worker=P, --fault-rt-stall-micros=N, --watchdog-budget=N,
/// --watchdog-retry-limit=N, --watchdog-demote-threshold=N and
/// --degrade-squash-rate=R. Environment fallbacks (flags win):
/// SPECSYNC_FAULT_SEED, SPECSYNC_FAULT_RATE, SPECSYNC_WATCHDOG_BUDGET.
/// Unrecognized arguments are left alone; argv is not mutated.
RobustnessOptions parseRobustnessArgs(int argc, char **argv);

} // namespace specsync

#endif // SPECSYNC_SIM_FAULTINJECTOR_H
