//===- sim/MachineConfig.h - Simulated machine parameters -------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulation parameters in the spirit of the paper's Table 1: a 4-core
/// chip multiprocessor of 4-way-issue cores (MIPS R14000-like, modernized
/// to a 128-entry reorder buffer), private split L1 caches, a unified L2
/// reached through a crossbar, and TLS-specific overheads.
///
/// The timing model grades instruction cost by class (simple ALU ops are
/// fully pipelined; divides and cache misses stall); out-of-order latency
/// hiding is not modeled, which shifts absolute numbers but not the
/// relative behaviour the reproduction targets (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_MACHINECONFIG_H
#define SPECSYNC_SIM_MACHINECONFIG_H

#include <cstdint>
#include <string>

namespace specsync {

struct MachineConfig {
  // Pipeline parameters.
  unsigned NumCores = 4;
  unsigned IssueWidth = 4;
  unsigned ReorderBuffer = 128; ///< Reported, not modeled cycle-by-cycle.
  unsigned IntMulLatency = 3;   ///< Pipelined (occupies one slot).
  unsigned IntDivLatency = 12;  ///< Unpipelined (stalls the core).

  // Memory parameters.
  unsigned CacheLineBytes = 32;
  unsigned L1SizeKB = 32;
  unsigned L1Assoc = 2;
  unsigned L1HitLatency = 1; ///< Fully pipelined; no stall.
  unsigned L2SizeKB = 2048;
  unsigned L2Assoc = 4;
  unsigned L2HitLatency = 10; ///< Minimum miss latency to secondary cache.
  unsigned MemLatency = 75;   ///< Minimum miss latency to local memory.

  // TLS parameters.
  unsigned EpochSpawnOverhead = 12;     ///< Cycles from spawn to first issue.
  unsigned ViolationDetectLatency = 8;  ///< Store to squash-notification.
  unsigned ViolationRestartPenalty = 24;///< Squash-to-restart gap.
  unsigned CommitLatency = 4;           ///< Homefree-token handoff cost.
  unsigned SignalLatency = 2;           ///< Cross-core forwarding latency.
  unsigned SignalAddrBufferEntries = 10;///< Paper: never needs more than 10.

  // Hardware-inserted synchronization (comparison technique, [25]).
  unsigned HwSyncTableEntries = 32;
  uint64_t HwSyncResetInterval = 10000; ///< Cycles between table resets.

  // Hardware value prediction (comparison technique).
  unsigned PredictorTableEntries = 1024;
};

/// Renders the configuration as the paper's Table 1.
std::string describeMachine(const MachineConfig &Config);

} // namespace specsync

#endif // SPECSYNC_SIM_MACHINECONFIG_H
