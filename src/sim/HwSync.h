//===- sim/HwSync.h - Hardware-inserted synchronization ---------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison technique from the paper's prior work [25]: the hardware
/// identifies loads that frequently cause speculation to fail (a bounded
/// table of violating load PCs) and stalls those loads until the previous
/// epoch completes. The table is reset periodically so that loads whose
/// dependences become infrequent do not stay over-synchronized.
///
/// Both organizations from the literature are modeled: per-CPU tables
/// (each core learns from the violations of the epochs it ran — the
/// distributed design [25] argues for) and a single shared table (an
/// idealization of coherent broadcast-updated replicas). Per-CPU is the
/// default; the difference is measured in bench/ext_hybrid.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_HWSYNC_H
#define SPECSYNC_SIM_HWSYNC_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace specsync {

class FaultInjector;
namespace obs {
struct Counter;
class EventLog;
} // namespace obs

class HwViolationTable {
public:
  HwViolationTable(unsigned Capacity, uint64_t ResetInterval);

  /// Records that load \p LoadId caused a violation at \p Cycle. A
  /// \p Sticky entry survives periodic resets (the paper's future-work
  /// item iv: "reset a violating load less frequently if the compiler
  /// hints that it will occur frequently").
  void recordViolation(uint32_t LoadId, uint64_t Cycle, bool Sticky = false);

  /// Returns true if \p LoadId is currently marked for synchronization.
  /// Applies the lazy periodic reset.
  bool contains(uint32_t LoadId, uint64_t Cycle);

  uint64_t numResets() const { return Resets; }
  size_t size() const { return Lru.size(); }

private:
  void maybeReset(uint64_t Cycle);
  void erase(uint32_t LoadId);

  unsigned Capacity;
  uint64_t ResetInterval;
  uint64_t LastReset = 0;
  uint64_t Resets = 0;
  std::list<uint32_t> Lru; ///< Front = most recent.
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> Index;
  std::unordered_map<uint32_t, bool> StickyFlags;

  // Registry handles bound at construction to the constructing thread's
  // current registry (per-cell under the parallel experiment runner).
  obs::Counter *CResets;
  obs::Counter *CRecorded;
  obs::EventLog *Ev; ///< Causal ledger, same binding rule.
};

/// The per-core organization: each core consults and trains its own
/// table (the core that ran the violated epoch learns the load).
class HwSyncTables {
public:
  HwSyncTables(unsigned NumCores, unsigned CapacityPerTable,
               uint64_t ResetInterval, bool Shared);

  /// Routes table updates through \p FI (dropped updates model lost
  /// coherence messages). nullptr disables injection.
  void setFaultInjector(FaultInjector *FI) { Faults = FI; }

  void recordViolation(unsigned Core, uint32_t LoadId, uint64_t Cycle,
                       bool Sticky = false);
  bool contains(unsigned Core, uint32_t LoadId, uint64_t Cycle);
  /// True if any core's table holds the load (used for attribution).
  bool containsAny(uint32_t LoadId, uint64_t Cycle);

  uint64_t numResets() const;

private:
  bool Shared;
  std::vector<HwViolationTable> Tables; ///< One, or one per core.
  FaultInjector *Faults = nullptr;
};

} // namespace specsync

#endif // SPECSYNC_SIM_HWSYNC_H
