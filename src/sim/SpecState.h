//===- sim/SpecState.h - Speculative dependence tracking --------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the TLS hardware's dependence tracking: extended invalidation-
/// based coherence that records, per cache line, which in-flight epochs
/// have performed exposed speculative reads. When an earlier epoch stores
/// to a line that a later active epoch has already read, the later epoch is
/// violated. Tracking is at cache-line granularity — exactly what makes
/// false sharing visible (the paper's M88KSIM discussion).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_SPECSTATE_H
#define SPECSYNC_SIM_SPECSTATE_H

#include "sim/ConflictRules.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace specsync {

// ReadMark (the mark identity record) lives in sim/ConflictRules.h, the
// header shared with the real-threads backend.

class SpecState {
public:
  explicit SpecState(unsigned LineShift, const conflict::PadSet *Pads = nullptr)
      : LineShift(LineShift), Pads(Pads) {}

  /// The conflict granule of \p Addr — the cache line, unless the compiler
  /// padded the word into a granule of its own (conflict::granuleOf).
  uint64_t lineOf(uint64_t Addr) const {
    return conflict::granuleOf(Addr, LineShift, Pads);
  }

  /// Records an exposed speculative read of \p Addr by \p Epoch.
  void markRead(uint64_t Addr, uint64_t Epoch, uint32_t LoadStaticId,
                uint32_t LoadContext, int32_t LoadSyncId, uint64_t Cycle);

  /// Returns the oldest active reader of \p Addr's line that is logically
  /// later than \p WriterEpoch (a violation candidate), if any.
  std::optional<ReadMark> findViolatedReader(uint64_t Addr,
                                             uint64_t WriterEpoch) const;

  /// Removes all read marks of \p Epoch (on commit or squash).
  void clearEpoch(uint64_t Epoch);

  /// Number of lines currently carrying marks (for tests).
  size_t numMarkedLines() const { return Readers.size(); }

private:
  unsigned LineShift;
  const conflict::PadSet *Pads = nullptr;
  /// Line -> active read marks (at most one per epoch).
  std::unordered_map<uint64_t, std::vector<ReadMark>> Readers;
  /// Epoch -> lines it marked (for O(marks) cleanup).
  std::unordered_map<uint64_t, std::vector<uint64_t>> EpochLines;
};

} // namespace specsync

#endif // SPECSYNC_SIM_SPECSTATE_H
