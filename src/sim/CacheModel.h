//===- sim/CacheModel.h - Two-level cache timing model ----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative LRU tag arrays for the private per-core L1 data caches
/// and the shared unified L2, used purely for access-latency classification
/// (hit / L2 / memory). Coherence-invalidation timing is not modeled; the
/// TLS dependence-violation machinery lives in SpecState.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_CACHEMODEL_H
#define SPECSYNC_SIM_CACHEMODEL_H

#include "obs/StatRegistry.h"
#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace specsync {

/// One set-associative LRU tag array.
class TagArray {
public:
  TagArray(unsigned SizeKB, unsigned Assoc, unsigned LineBytes);

  /// Probes for \p Addr; fills the line on miss. Returns true on hit.
  bool accessAndFill(uint64_t Addr);

  /// Probe without filling.
  bool probe(uint64_t Addr) const;

private:
  unsigned Assoc;
  unsigned NumSets;
  unsigned LineShift;
  std::vector<uint64_t> Tags; ///< NumSets * Assoc entries; 0 = invalid.
  std::vector<uint64_t> LRU;  ///< Per-entry last-touch stamp.
  uint64_t Stamp = 0;
};

/// The full hierarchy: per-core L1s in front of one shared L2.
class CacheModel {
public:
  explicit CacheModel(const MachineConfig &Config);

  /// Simulates an access by \p Core; returns its latency in cycles and
  /// whether it stalls the core (anything beyond an L1 hit does).
  unsigned accessLatency(unsigned Core, uint64_t Addr);

  uint64_t l1Misses() const { return L1Misses; }
  uint64_t l2Misses() const { return L2Misses; }

private:
  const MachineConfig &Config;
  std::vector<TagArray> L1s;
  TagArray L2;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;

  // Registry mirrors of the miss counters (no-ops unless --stats).
  obs::Counter *CAccesses =
      obs::StatRegistry::global().counter("sim.cache.accesses");
  obs::Counter *CL1Miss =
      obs::StatRegistry::global().counter("sim.cache.l1_miss");
  obs::Counter *CL2Miss =
      obs::StatRegistry::global().counter("sim.cache.l2_miss");
};

} // namespace specsync

#endif // SPECSYNC_SIM_CACHEMODEL_H
