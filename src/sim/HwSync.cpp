//===- sim/HwSync.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/HwSync.h"

#include "obs/EventLog.h"
#include "obs/StatRegistry.h"
#include "sim/FaultInjector.h"

#include <cassert>

using namespace specsync;

HwViolationTable::HwViolationTable(unsigned Capacity, uint64_t ResetInterval)
    : Capacity(Capacity), ResetInterval(ResetInterval),
      CResets(obs::StatRegistry::global().counter("sim.hwsync.resets")),
      CRecorded(
          obs::StatRegistry::global().counter("sim.hwsync.recorded_loads")),
      Ev(&obs::EventLog::global()) {}

void HwViolationTable::maybeReset(uint64_t Cycle) {
  if (ResetInterval == 0 || Cycle - LastReset < ResetInterval)
    return;
  // Sticky entries (compiler-hinted frequent violators) survive the reset.
  for (auto It = Lru.begin(); It != Lru.end();) {
    uint32_t Id = *It;
    auto Sticky = StickyFlags.find(Id);
    if (Sticky != StickyFlags.end() && Sticky->second) {
      ++It;
      continue;
    }
    Index.erase(Id);
    StickyFlags.erase(Id);
    It = Lru.erase(It);
  }
  LastReset = Cycle;
  ++Resets;
  CResets->add(1);
  if (Ev->active()) {
    obs::SpecEvent E;
    E.Kind = static_cast<uint8_t>(obs::EventKind::HwReset);
    E.Cycle = Cycle;
    E.Aux = Lru.size(); // Survivors (sticky entries) after the sweep.
    Ev->push(E);
  }
}

void HwViolationTable::erase(uint32_t LoadId) {
  auto It = Index.find(LoadId);
  if (It == Index.end())
    return;
  Lru.erase(It->second);
  Index.erase(It);
  StickyFlags.erase(LoadId);
}

void HwViolationTable::recordViolation(uint32_t LoadId, uint64_t Cycle,
                                       bool Sticky) {
  CRecorded->add(1);
  if (Ev->active()) {
    obs::SpecEvent E;
    E.Kind = static_cast<uint8_t>(obs::EventKind::HwLearn);
    E.Cycle = Cycle;
    E.StaticId = LoadId;
    E.Flags = Sticky ? 1 : 0;
    Ev->push(E);
  }
  maybeReset(Cycle);
  erase(LoadId);
  if (Lru.size() >= Capacity) {
    uint32_t Victim = Lru.back();
    Lru.pop_back();
    Index.erase(Victim);
    StickyFlags.erase(Victim);
  }
  Lru.push_front(LoadId);
  Index[LoadId] = Lru.begin();
  StickyFlags[LoadId] = Sticky;
}

bool HwViolationTable::contains(uint32_t LoadId, uint64_t Cycle) {
  maybeReset(Cycle);
  return Index.count(LoadId) > 0;
}

HwSyncTables::HwSyncTables(unsigned NumCores, unsigned CapacityPerTable,
                           uint64_t ResetInterval, bool Shared)
    : Shared(Shared) {
  unsigned NumTables = Shared ? 1 : NumCores;
  for (unsigned I = 0; I < NumTables; ++I)
    Tables.emplace_back(CapacityPerTable, ResetInterval);
}

void HwSyncTables::recordViolation(unsigned Core, uint32_t LoadId,
                                   uint64_t Cycle, bool Sticky) {
  // A dropped update models a lost coherence message: the table simply
  // never learns this violation (degrades accuracy, never correctness).
  if (Faults && Faults->dropHwUpdate())
    return;
  Tables[Shared ? 0 : Core].recordViolation(LoadId, Cycle, Sticky);
}

bool HwSyncTables::contains(unsigned Core, uint32_t LoadId, uint64_t Cycle) {
  return Tables[Shared ? 0 : Core].contains(LoadId, Cycle);
}

bool HwSyncTables::containsAny(uint32_t LoadId, uint64_t Cycle) {
  for (HwViolationTable &T : Tables)
    if (T.contains(LoadId, Cycle))
      return true;
  return false;
}

uint64_t HwSyncTables::numResets() const {
  uint64_t N = 0;
  for (const HwViolationTable &T : Tables)
    N += T.numResets();
  return N;
}
