//===- sim/SyncChannels.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SyncChannels.h"

#include <algorithm>
#include <cassert>

using namespace specsync;

void SyncChannels::sendScalar(int Channel, uint64_t ConsumerEpoch,
                              uint64_t Arrival) {
  CScalarSends->add(1);
  // Keep the earliest arrival: a signal beats the commit-time auto-signal.
  auto Key = std::make_pair(Channel, ConsumerEpoch);
  auto It = Scalars.find(Key);
  if (It == Scalars.end() || Arrival < It->second.ArrivalCycle)
    Scalars[Key] = ScalarForward{Arrival};
}

std::optional<ScalarForward>
SyncChannels::getScalar(int Channel, uint64_t ConsumerEpoch) const {
  auto It = Scalars.find(std::make_pair(Channel, ConsumerEpoch));
  if (It == Scalars.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::sendMem(int Group, uint64_t ConsumerEpoch, uint64_t Addr,
                           uint64_t Value, uint64_t Arrival) {
  CMemSends->add(1);
  if (Addr == 0)
    CNullSignals->add(1);
  auto Key = std::make_pair(Group, ConsumerEpoch);
  auto It = Mems.find(Key);
  if (It == Mems.end() || Arrival < It->second.ArrivalCycle)
    Mems[Key] = MemForward{Addr, Value, Arrival};
}

std::optional<MemForward> SyncChannels::getMem(int Group,
                                               uint64_t ConsumerEpoch) const {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  if (It == Mems.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::updateMemValue(int Group, uint64_t ConsumerEpoch,
                                  uint64_t Addr, uint64_t Value) {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  assert(It != Mems.end() && "updating a forward that was never sent");
  It->second.Addr = Addr;
  It->second.Value = Value;
}

void SyncChannels::clearForConsumer(uint64_t ConsumerEpoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second == ConsumerEpoch ? Scalars.erase(It)
                                           : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second == ConsumerEpoch ? Mems.erase(It) : std::next(It);
}

void SyncChannels::collectUpTo(uint64_t Epoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second <= Epoch ? Scalars.erase(It) : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second <= Epoch ? Mems.erase(It) : std::next(It);
}

bool SignalAddressBuffer::recordSignal(int Group, uint64_t Addr) {
  Entries.emplace_back(Group, Addr);
  return Entries.size() <= Capacity;
}

bool SignalAddressBuffer::conflictsWithStore(uint64_t Addr) const {
  for (const auto &[Group, A] : Entries)
    if (A == Addr && A != 0)
      return true;
  return false;
}
