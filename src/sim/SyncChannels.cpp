//===- sim/SyncChannels.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SyncChannels.h"

#include "sim/FaultInjector.h"

#include <algorithm>
#include <cassert>

using namespace specsync;

namespace {

/// Builds the common part of a signal-edge ledger record: producer epoch
/// on one side, consumer on the other, the channel/group id, and the
/// (post-injection) arrival cycle.
obs::SpecEvent signalEvent(obs::EventKind Kind, int Id,
                           uint64_t ConsumerEpoch, uint64_t Arrival,
                           uint8_t Flags) {
  obs::SpecEvent E;
  E.Kind = static_cast<uint8_t>(Kind);
  E.Cycle = Arrival;
  E.Epoch = ConsumerEpoch ? ConsumerEpoch - 1 : 0;
  E.OtherEpoch = ConsumerEpoch;
  E.SyncId = Id;
  E.Flags = Flags;
  return E;
}

} // namespace

void SyncChannels::sendScalar(int Channel, uint64_t ConsumerEpoch,
                              uint64_t Arrival, bool Faultable) {
  CScalarSends->add(1);
  uint8_t EvFlags = 0;
  if (Faultable && Faults) {
    if (Faults->dropSignal()) {
      // Lost on the wire; the watchdog recovers the consumer.
      if (Ev->active())
        Ev->push(signalEvent(obs::EventKind::SignalScalarSent, Channel,
                             ConsumerEpoch, Arrival,
                             obs::event_flags::kSigDropped));
      return;
    }
    uint64_t Delay = Faults->delaySignal();
    if (Delay)
      EvFlags |= obs::event_flags::kSigDelayed;
    Arrival += Delay;
  }
  if (Ev->active())
    Ev->push(signalEvent(obs::EventKind::SignalScalarSent, Channel,
                         ConsumerEpoch, Arrival, EvFlags));
  // Keep the earliest arrival: a signal beats the commit-time auto-signal.
  auto Key = std::make_pair(Channel, ConsumerEpoch);
  auto It = Scalars.find(Key);
  if (It == Scalars.end() || Arrival < It->second.ArrivalCycle)
    Scalars[Key] = ScalarForward{Arrival};
}

std::optional<ScalarForward>
SyncChannels::getScalar(int Channel, uint64_t ConsumerEpoch) const {
  auto It = Scalars.find(std::make_pair(Channel, ConsumerEpoch));
  if (It == Scalars.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::sendMem(int Group, uint64_t ConsumerEpoch, uint64_t Addr,
                           uint64_t Value, uint64_t Arrival, bool Faultable) {
  CMemSends->add(1);
  if (Addr == 0)
    CNullSignals->add(1);
  uint8_t EvFlags = Addr == 0 ? obs::event_flags::kSigNull : uint8_t(0);
  bool Corrupted = false;
  if (Faultable && Faults) {
    if (Faults->dropSignal()) {
      if (Ev->active()) {
        obs::SpecEvent E =
            signalEvent(obs::EventKind::SignalMemSent, Group, ConsumerEpoch,
                        Arrival, EvFlags | obs::event_flags::kSigDropped);
        E.Addr = Addr;
        E.Aux = Value;
        Ev->push(E);
      }
      return;
    }
    uint64_t Delay = Faults->delaySignal();
    if (Delay)
      EvFlags |= obs::event_flags::kSigDelayed;
    Arrival += Delay;
    // NULL signals carry no value, so there is nothing to corrupt.
    Corrupted = Addr != 0 && Faults->corruptForward();
    if (Corrupted)
      EvFlags |= obs::event_flags::kSigCorrupted;
  }
  if (Ev->active()) {
    obs::SpecEvent E = signalEvent(obs::EventKind::SignalMemSent, Group,
                                   ConsumerEpoch, Arrival, EvFlags);
    E.Addr = Addr;
    E.Aux = Value;
    Ev->push(E);
  }
  auto Key = std::make_pair(Group, ConsumerEpoch);
  auto It = Mems.find(Key);
  if (It == Mems.end() || Arrival < It->second.ArrivalCycle)
    Mems[Key] = MemForward{Addr, Value, Arrival, Corrupted};
}

std::optional<MemForward> SyncChannels::getMem(int Group,
                                               uint64_t ConsumerEpoch) const {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  if (It == Mems.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::updateMemValue(int Group, uint64_t ConsumerEpoch,
                                  uint64_t Addr, uint64_t Value) {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  assert(It != Mems.end() && "updating a forward that was never sent");
  It->second.Addr = Addr;
  It->second.Value = Value;
}

void SyncChannels::clearCorrupted(int Group, uint64_t ConsumerEpoch) {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  if (It != Mems.end())
    It->second.Corrupted = false;
}

void SyncChannels::clearForConsumer(uint64_t ConsumerEpoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second == ConsumerEpoch ? Scalars.erase(It)
                                           : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second == ConsumerEpoch ? Mems.erase(It) : std::next(It);
}

void SyncChannels::collectUpTo(uint64_t Epoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second <= Epoch ? Scalars.erase(It) : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second <= Epoch ? Mems.erase(It) : std::next(It);
}

bool SignalAddressBuffer::recordSignal(int Group, uint64_t Addr) {
  Entries.emplace_back(Group, Addr);
  return Entries.size() <= Capacity;
}

bool SignalAddressBuffer::conflictsWithStore(uint64_t Addr) const {
  for (const auto &[Group, A] : Entries)
    if (A == Addr && A != 0)
      return true;
  return false;
}
