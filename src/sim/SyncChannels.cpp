//===- sim/SyncChannels.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/SyncChannels.h"

#include "sim/FaultInjector.h"

#include <algorithm>
#include <cassert>

using namespace specsync;

void SyncChannels::sendScalar(int Channel, uint64_t ConsumerEpoch,
                              uint64_t Arrival, bool Faultable) {
  CScalarSends->add(1);
  if (Faultable && Faults) {
    if (Faults->dropSignal())
      return; // Lost on the wire; the watchdog recovers the consumer.
    Arrival += Faults->delaySignal();
  }
  // Keep the earliest arrival: a signal beats the commit-time auto-signal.
  auto Key = std::make_pair(Channel, ConsumerEpoch);
  auto It = Scalars.find(Key);
  if (It == Scalars.end() || Arrival < It->second.ArrivalCycle)
    Scalars[Key] = ScalarForward{Arrival};
}

std::optional<ScalarForward>
SyncChannels::getScalar(int Channel, uint64_t ConsumerEpoch) const {
  auto It = Scalars.find(std::make_pair(Channel, ConsumerEpoch));
  if (It == Scalars.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::sendMem(int Group, uint64_t ConsumerEpoch, uint64_t Addr,
                           uint64_t Value, uint64_t Arrival, bool Faultable) {
  CMemSends->add(1);
  if (Addr == 0)
    CNullSignals->add(1);
  bool Corrupted = false;
  if (Faultable && Faults) {
    if (Faults->dropSignal())
      return;
    Arrival += Faults->delaySignal();
    // NULL signals carry no value, so there is nothing to corrupt.
    Corrupted = Addr != 0 && Faults->corruptForward();
  }
  auto Key = std::make_pair(Group, ConsumerEpoch);
  auto It = Mems.find(Key);
  if (It == Mems.end() || Arrival < It->second.ArrivalCycle)
    Mems[Key] = MemForward{Addr, Value, Arrival, Corrupted};
}

std::optional<MemForward> SyncChannels::getMem(int Group,
                                               uint64_t ConsumerEpoch) const {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  if (It == Mems.end())
    return std::nullopt;
  return It->second;
}

void SyncChannels::updateMemValue(int Group, uint64_t ConsumerEpoch,
                                  uint64_t Addr, uint64_t Value) {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  assert(It != Mems.end() && "updating a forward that was never sent");
  It->second.Addr = Addr;
  It->second.Value = Value;
}

void SyncChannels::clearCorrupted(int Group, uint64_t ConsumerEpoch) {
  auto It = Mems.find(std::make_pair(Group, ConsumerEpoch));
  if (It != Mems.end())
    It->second.Corrupted = false;
}

void SyncChannels::clearForConsumer(uint64_t ConsumerEpoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second == ConsumerEpoch ? Scalars.erase(It)
                                           : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second == ConsumerEpoch ? Mems.erase(It) : std::next(It);
}

void SyncChannels::collectUpTo(uint64_t Epoch) {
  for (auto It = Scalars.begin(); It != Scalars.end();)
    It = It->first.second <= Epoch ? Scalars.erase(It) : std::next(It);
  for (auto It = Mems.begin(); It != Mems.end();)
    It = It->first.second <= Epoch ? Mems.erase(It) : std::next(It);
}

bool SignalAddressBuffer::recordSignal(int Group, uint64_t Addr) {
  Entries.emplace_back(Group, Addr);
  return Entries.size() <= Capacity;
}

bool SignalAddressBuffer::conflictsWithStore(uint64_t Addr) const {
  for (const auto &[Group, A] : Entries)
    if (A == Addr && A != 0)
      return true;
  return false;
}
