//===- sim/SyncChannels.h - Wait/signal forwarding channels -----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-to-point forwarding between consecutive epochs, for both scalar
/// channels ([32]) and memory-resident groups (this paper). Each (channel,
/// consumer-epoch) mailbox carries an arrival cycle; memory mailboxes also
/// carry the forwarded (address, value) pair, where address 0 is the NULL
/// signal ("value never produced on this path").
///
/// Also implements the producer-side signal address buffer: the small
/// per-CPU structure that detects a later store in the producer epoch
/// overwriting an already-forwarded location.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_SYNCCHANNELS_H
#define SPECSYNC_SIM_SYNCCHANNELS_H

#include "obs/EventLog.h"
#include "obs/StatRegistry.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace specsync {

class FaultInjector;

/// A forwarded memory-resident value.
struct MemForward {
  uint64_t Addr = 0; ///< 0 = NULL signal.
  uint64_t Value = 0;
  uint64_t ArrivalCycle = 0;
  /// Damaged in flight by fault injection. The timing simulator holds no
  /// architectural state, so corruption is a flag the consumer's check
  /// hardware detects at use time (and recovers from by squashing).
  bool Corrupted = false;
};

/// A forwarded scalar (timing only; values live in the trace).
struct ScalarForward {
  uint64_t ArrivalCycle = 0;
};

class SyncChannels {
public:
  /// Routes sends through \p FI (drop / delay / corrupt). nullptr disables
  /// injection; the pointer must outlive this object.
  void setFaultInjector(FaultInjector *FI) { Faults = FI; }

  // --- Scalar channels --------------------------------------------------
  /// \p Faultable = false bypasses injection (watchdog recovery signals
  /// must not themselves be dropped).
  void sendScalar(int Channel, uint64_t ConsumerEpoch, uint64_t Arrival,
                  bool Faultable = true);
  std::optional<ScalarForward> getScalar(int Channel,
                                         uint64_t ConsumerEpoch) const;

  // --- Memory groups ----------------------------------------------------
  void sendMem(int Group, uint64_t ConsumerEpoch, uint64_t Addr,
               uint64_t Value, uint64_t Arrival, bool Faultable = true);
  std::optional<MemForward> getMem(int Group, uint64_t ConsumerEpoch) const;
  /// Updates an already-sent forward in place (producer stored again before
  /// the consumer started).
  void updateMemValue(int Group, uint64_t ConsumerEpoch, uint64_t Addr,
                      uint64_t Value);
  /// Clears the corruption flag after the consumer detected it (the
  /// hardware refetches the true value as part of recovery).
  void clearCorrupted(int Group, uint64_t ConsumerEpoch);

  /// Drops everything produced *for* \p ConsumerEpoch (called when that
  /// epoch's producer is squashed and will re-send).
  void clearForConsumer(uint64_t ConsumerEpoch);

  /// Drops everything for consumers at or below \p Epoch (commit-time GC).
  void collectUpTo(uint64_t Epoch);

private:
  std::map<std::pair<int, uint64_t>, ScalarForward> Scalars;
  std::map<std::pair<int, uint64_t>, MemForward> Mems;
  FaultInjector *Faults = nullptr;

  // Registry counters (no-ops unless --stats).
  obs::Counter *CScalarSends =
      obs::StatRegistry::global().counter("sim.channels.scalar_sends");
  obs::Counter *CMemSends =
      obs::StatRegistry::global().counter("sim.channels.mem_sends");
  obs::Counter *CNullSignals =
      obs::StatRegistry::global().counter("sim.channels.null_signals");
  /// Causal event ledger handle (--events-out); binds to the constructing
  /// thread's current ledger like the counters above.
  obs::EventLog *Ev = &obs::EventLog::global();
};

/// The producer-side signal address buffer (bounded; the paper observes 10
/// entries always suffice). One instance per in-flight epoch.
class SignalAddressBuffer {
public:
  explicit SignalAddressBuffer(unsigned Capacity) : Capacity(Capacity) {}

  /// Records a forwarded address; returns false if the buffer overflowed
  /// (the entry is still tracked so correctness is preserved; overflow is
  /// reported as a statistic).
  bool recordSignal(int Group, uint64_t Addr);

  /// Returns true when \p Addr was already forwarded by this epoch — the
  /// "signaled, then overwritten" hazard that must restart the consumer.
  bool conflictsWithStore(uint64_t Addr) const;

  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }

private:
  unsigned Capacity;
  std::vector<std::pair<int, uint64_t>> Entries; ///< (group, word addr).
};

} // namespace specsync

#endif // SPECSYNC_SIM_SYNCCHANNELS_H
