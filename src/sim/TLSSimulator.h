//===- sim/TLSSimulator.h - TLS chip-multiprocessor timing model -*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven timing simulator for the paper's TLS hardware: epochs of
/// the parallel region run round-robin on the cores of a chip
/// multiprocessor, commit in order, and are squashed and restarted when an
/// earlier epoch's store hits a cache line a later epoch has already read
/// (line-granularity tracking through extended cache coherence).
///
/// The simulator honors the compiler-inserted synchronization in the trace
/// (scalar and memory wait/signal, forwarded-value checks, the signal
/// address buffer) and optionally models the hardware comparison
/// techniques: hardware-inserted synchronization of violating loads and
/// last-value prediction. Execution-mode flags select the paper's U / O /
/// T / C / E / L / P / H / B configurations.
///
/// Slot accounting follows Figure 2: every cycle of every core contributes
/// IssueWidth graduation slots, split into busy (graduated instructions),
/// fail (all slots of squashed epoch attempts), sync (stalls at wait
/// instructions and hardware-sync stalls), and other (everything else:
/// cache misses, spawn/commit overheads, idle cores, load imbalance).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SIM_TLSSIMULATOR_H
#define SPECSYNC_SIM_TLSSIMULATOR_H

#include "interp/Trace.h"
#include "sim/CacheModel.h"
#include "sim/FaultInjector.h"
#include "sim/HwSync.h"
#include "sim/MachineConfig.h"
#include "sim/SpecState.h"
#include "sim/SyncChannels.h"
#include "sim/ValuePredictor.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace specsync {

/// Loads named by (static id, context) — the keying used for oracle-immune
/// sets (Figures 2/6) and compiler-sync attribution (Figure 11).
using LoadNameSet = std::set<std::pair<uint32_t, uint32_t>>;

struct TLSSimOptions {
  // Oracle / limit-study controls.
  bool OraclePerfectMemory = false; ///< O: no memory violations or stalls.
  const LoadNameSet *ImmuneLoads = nullptr; ///< Fig 6 threshold subsets.

  // Compiler-sync idealizations (Figure 9).
  bool PerfectSyncedValues = false; ///< E: waits free, synced loads immune.
  bool StallSyncedUntilDone = false; ///< L: synced loads wait for commit.

  // Hardware comparison techniques (Figure 10).
  bool HwSyncStall = false;   ///< H (or B when the trace has compiler sync).
  bool HwValuePredict = false; ///< P.
  /// Use one broadcast-coherent table instead of per-CPU tables.
  bool HwSyncSharedTable = false;

  // The paper's proposed hybrid enhancements (Section 4.2, items iii/iv).
  /// (iii) Hardware filters compiler-inserted synchronization whose
  /// forwarded values rarely match: groups with a low check.fwd hit rate
  /// stop stalling at wait.mem.
  bool HybridFilterUselessSync = false;
  /// (iv) Compiler-hinted violating loads survive the periodic table
  /// reset (the compiler knows the dependence is frequent).
  bool HybridStickyHints = false;

  // Attribution (Figure 11): loads the compiler *would* synchronize.
  const LoadNameSet *CompilerSyncSet = nullptr;

  // Channel/group universe for commit-time auto-signals.
  unsigned NumScalarChannels = 0;
  unsigned NumMemGroups = 0;

  uint64_t MaxCycles = 2'000'000'000ull; ///< Runaway guard.

  /// Words the Pad remedy granted their own conflict granule (owned by the
  /// remedy plan; null when remedies are off). Must outlive the simulator.
  const conflict::PadSet *Pads = nullptr;

  // Robustness (fault injection + watchdog recovery). With Faults null and
  // WatchdogBudget 0 every new path below is inert and timing is
  // bit-identical to a simulator without the subsystem.
  const FaultPlan *Faults = nullptr; ///< Must outlive the simulator.
  uint64_t WatchdogBudget = 0;       ///< Per-region cycle budget (0 = off).
  unsigned WatchdogBackoffBase = 32; ///< Base retry backoff, cycles.
  unsigned EpochRetryLimit = 8;      ///< Squashes before epoch protection.
  unsigned GroupDemoteThreshold = 3; ///< Watchdog trips before demotion.
  double DegradeSquashRate = 0.0;    ///< Squashes/epoch degrade cap (0 = off).
};

struct SlotBreakdown {
  uint64_t Busy = 0;
  uint64_t Fail = 0;
  uint64_t SyncScalar = 0;
  uint64_t SyncMem = 0;
  uint64_t Total = 0;

  uint64_t sync() const { return SyncScalar + SyncMem; }
  uint64_t other() const {
    uint64_t Used = Busy + Fail + sync();
    assert(Used <= Total && "slot accounting drift: busy+fail+sync > total");
    // Clamp in release builds: a drifted breakdown must not wrap to a huge
    // "other" segment.
    return Used <= Total ? Total - Used : 0;
  }
};

struct TLSSimResult {
  bool Completed = true;
  uint64_t Cycles = 0;
  SlotBreakdown Slots;

  uint64_t EpochsCommitted = 0;
  uint64_t Violations = 0;     ///< Read-after-write squashes.
  uint64_t SabViolations = 0;  ///< Signaled-then-overwritten squashes.
  uint64_t PredictRestarts = 0;

  // Figure 11 attribution of violating loads.
  uint64_t ViolCompilerOnly = 0;
  uint64_t ViolHwOnly = 0;
  uint64_t ViolBoth = 0;
  uint64_t ViolNeither = 0;

  uint64_t SabMaxOccupancy = 0;
  uint64_t SabOverflows = 0;
  uint64_t HwTableResets = 0;
  uint64_t PredictorCorrect = 0;
  uint64_t PredictorWrong = 0;
  uint64_t FilteredWaits = 0; ///< Waits skipped by hybrid filter (iii).

  // Robustness accounting (all zero when fault injection and the watchdog
  // are off). Faults: what the injector fired during this region.
  FaultCounts Faults;
  uint64_t WatchdogTrips = 0; ///< Deadlocks detected (no runnable epoch).
  uint64_t WatchdogWakes = 0; ///< Parked epochs force-woken by the watchdog.
  uint64_t CorruptionsDetected = 0; ///< Corrupted forwards caught at use.
  uint64_t BackoffRetries = 0; ///< Squash retries that paid extra backoff.
  uint64_t LivelockBreaks = 0; ///< Epochs protected past the retry limit.
  uint64_t DemotedSyncs = 0;   ///< Channels/groups demoted to plain spec.
  uint64_t DemotedWaits = 0;   ///< Waits skipped because of demotion.
  /// The watchdog gave up on parallel execution of this region (cycle
  /// budget or squash-rate threshold exceeded); the harness substitutes
  /// the sequential baseline.
  bool DegradedToSequential = false;

  void accumulate(const TLSSimResult &RHS);
};

/// The simulator. Cache, hardware-sync and predictor state persist across
/// simulateRegion calls (region instances of one program run); speculative
/// state and channels are per-region.
class TLSSimulator {
public:
  TLSSimulator(const MachineConfig &Config, const TLSSimOptions &Opts);
  ~TLSSimulator();

  /// Simulates one parallel region instance; returns its timing.
  TLSSimResult simulateRegion(const RegionTrace &Region);

private:
  struct Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace specsync

#endif // SPECSYNC_SIM_TLSSIMULATOR_H
