//===- sim/CacheModel.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/CacheModel.h"

#include "obs/StatRegistry.h"

#include <cassert>

using namespace specsync;

static unsigned log2Exact(unsigned V) {
  unsigned L = 0;
  while ((1u << L) < V)
    ++L;
  assert((1u << L) == V && "value must be a power of two");
  return L;
}

TagArray::TagArray(unsigned SizeKB, unsigned Assoc, unsigned LineBytes)
    : Assoc(Assoc), NumSets(SizeKB * 1024 / LineBytes / Assoc),
      LineShift(log2Exact(LineBytes)), Tags(NumSets * Assoc, 0),
      LRU(NumSets * Assoc, 0) {
  assert(NumSets > 0 && "cache too small for its associativity");
}

bool TagArray::probe(uint64_t Addr) const {
  uint64_t Line = Addr >> LineShift;
  unsigned Set = static_cast<unsigned>(Line % NumSets);
  uint64_t Tag = Line / NumSets + 1; // +1 keeps 0 as "invalid".
  for (unsigned W = 0; W < Assoc; ++W)
    if (Tags[Set * Assoc + W] == Tag)
      return true;
  return false;
}

bool TagArray::accessAndFill(uint64_t Addr) {
  uint64_t Line = Addr >> LineShift;
  unsigned Set = static_cast<unsigned>(Line % NumSets);
  uint64_t Tag = Line / NumSets + 1;
  ++Stamp;
  unsigned VictimWay = 0;
  uint64_t VictimStamp = ~0ull;
  for (unsigned W = 0; W < Assoc; ++W) {
    unsigned Idx = Set * Assoc + W;
    if (Tags[Idx] == Tag) {
      LRU[Idx] = Stamp;
      return true;
    }
    if (LRU[Idx] < VictimStamp) {
      VictimStamp = LRU[Idx];
      VictimWay = W;
    }
  }
  unsigned Idx = Set * Assoc + VictimWay;
  Tags[Idx] = Tag;
  LRU[Idx] = Stamp;
  return false;
}

CacheModel::CacheModel(const MachineConfig &Config)
    : Config(Config),
      L2(Config.L2SizeKB, Config.L2Assoc, Config.CacheLineBytes) {
  for (unsigned C = 0; C < Config.NumCores; ++C)
    L1s.emplace_back(Config.L1SizeKB, Config.L1Assoc, Config.CacheLineBytes);
}

unsigned CacheModel::accessLatency(unsigned Core, uint64_t Addr) {
  assert(Core < L1s.size() && "core index out of range");
  CAccesses->add(1);
  if (L1s[Core].accessAndFill(Addr))
    return Config.L1HitLatency;
  ++L1Misses;
  CL1Miss->add(1);
  if (L2.accessAndFill(Addr))
    return Config.L2HitLatency;
  ++L2Misses;
  CL2Miss->add(1);
  return Config.MemLatency;
}
