//===- rt/EpochEngine.h - Speculative epoch execution -----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes one epoch attempt of the parallel region on a worker thread,
/// mirroring the fast interpreter's pre-decoded execution semantics
/// (interp/Interpreter.cpp runFast) with speculation plumbed in:
///
///  - Stores buffer privately (never touch shared memory); loads check the
///    private buffer, then an armed forward, then committed shared memory.
///  - Exposed reads and buffered writes are summarized at line granularity
///    into the EpochObs the ordered-commit validation consumes
///    (sim/ConflictRules.h rules 1-2).
///  - wait.mem / signal.mem / check.fwd route through a SyncPort so the
///    coordinator's protocol state stays behind one mutex; all other
///    instructions run lock-free.
///  - The attempt aborts promptly when the coordinator squashes it
///    (polled every few instructions) and force-fails when it overruns
///    the oracle-derived step cap or diverges out of the region shape.
///
/// Scalar state (entry register frame, RNG) comes from the region oracle
/// (interp/RegionOracle.h) — the stand-in for the paper's compiler-
/// forwarded scalars. Memory-resident values are fully speculative.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_EPOCHENGINE_H
#define SPECSYNC_RT_EPOCHENGINE_H

#include "interp/Decoded.h"
#include "interp/RegionOracle.h"
#include "rt/Protocol.h"
#include "rt/SharedMemory.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

namespace specsync {

class NativeModule;

namespace rt {

/// Immutable per-region execution environment shared by all attempts.
struct EpochEnv {
  const DecodedProgram &DP;
  unsigned RegionFunc;   ///< Decoded function index of the region function.
  uint32_t HeaderPC;     ///< Decoded PC of the region header block.
  SharedMemory &Shared;  ///< Committed memory image.
  unsigned LineShift;    ///< Conflict-detection granularity.
  /// Words the Pad remedy granted private conflict granules, or null.
  const conflict::PadSet *Pads = nullptr;
  /// Spec-mode lowered code (built over the same DecodedProgram as DP), or
  /// null to interpret every attempt. Memory accesses route through the
  /// speculative helpers; sync ops and frame transitions stay on the host.
  const NativeModule *Native = nullptr;
};

/// The attempt's rare-path connection to the protocol coordinator. All
/// calls may block (waitMem does; the others just take the protocol lock).
class SyncPort {
public:
  virtual ~SyncPort();

  /// wait.mem on group \p G: blocks until the producer epoch's current
  /// attempt has signaled G, finished, or committed — or this attempt was
  /// aborted (returns false). Never blocks when forwarding is off or the
  /// producer is committed.
  virtual bool waitMem(int32_t G) = 0;

  /// Publishes this attempt's forward for \p G (first signal wins; later
  /// signals to the same group are ignored by the caller).
  virtual void publishSignal(int32_t G, uint64_t Addr, int64_t Value) = 0;

  /// check.fwd query against the producer's post-wait signal state.
  /// Returns true with the forward's (Addr, Value) when the producer
  /// signaled \p G. Only meaningful after a completed waitMem(G).
  virtual bool lookupSignal(int32_t G, uint64_t &Addr, int64_t &Value) = 0;

  /// Squash poll (relaxed; checked every few instructions).
  virtual bool aborted() const = 0;
};

/// How the attempt's execution ended.
enum class EpochExitKind : uint8_t {
  NextEpoch,  ///< Back-edge taken at region depth (normal epoch boundary).
  RegionExit, ///< Region-exiting branch taken; ExitPC holds the target.
  Aborted,    ///< Squashed mid-flight (observation is partial; discard).
  ForcedFail, ///< Step-cap overrun or shape divergence; must fail validation.
};

struct EpochExec {
  EpochExitKind Kind = EpochExitKind::ForcedFail;
  uint32_t ExitPC = 0; ///< Valid for RegionExit.
  EpochObs Obs;
  std::unordered_map<uint64_t, int64_t> WriteBuf; ///< Addr -> value.
  /// Reduction-expansion partials: Addr -> (ReduceOpKind, accumulated
  /// value, starting from the op's identity). Folded into shared memory at
  /// in-order commit; ordered so the fold is deterministic.
  std::map<uint64_t, std::pair<uint8_t, int64_t>> ReduceAcc;

  explicit EpochExec(unsigned LineShift,
                     const conflict::PadSet *Pads = nullptr)
      : Obs(LineShift, Pads) {}
};

/// Runs one speculative epoch attempt. \p UseForwards must be the
/// protocol's dispatch-time flag (snapshot < epoch); when false, sync ops
/// are recorded for stall accounting but never block and never arm a
/// forward. \p StepsOut is bumped periodically so the coordinator can
/// charge wasted work for squashed attempts.
EpochExec runSpeculativeEpoch(const EpochEnv &Env, const EpochStart &Entry,
                              uint64_t StepCap, bool UseForwards,
                              SyncPort &Port,
                              std::atomic<uint64_t> &StepsOut);

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_EPOCHENGINE_H
