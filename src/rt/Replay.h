//===- rt/Replay.h - Trace-driven protocol replay reference ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-validation reference for the real-threads backend: derives
/// per-epoch protocol observations (rt/Protocol.h EpochObs) from the
/// committed sequential trace of the same binary, then drives the exact
/// same CommitWindow/validateAtHead/countStalls machinery the live engine
/// drives. Because the protocol is schedule-independent, the resulting
/// ProtocolCounts must equal the threaded run's counts exactly on every
/// workload — the differential suite in tests/rt_differential_test.cpp
/// asserts this.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_REPLAY_H
#define SPECSYNC_RT_REPLAY_H

#include "interp/Trace.h"
#include "rt/Protocol.h"

#include <vector>

namespace specsync {
namespace rt {

/// Derives the forwards-enabled observation of every epoch of one region
/// instance from its committed trace: exposed read/write line sets (loads
/// that would consume a forward are excluded, exactly like the engine),
/// waits, first-wins signals with forward-then-overwrite dirty bits, and
/// the consumed-forward groups with their sequentially-loaded values.
/// Remedy annotations mirror the engine: privatized stores and reduce ops
/// never enter the line summaries, and \p Pads (when non-null) grants
/// padded words private conflict granules.
std::vector<EpochObs> deriveEpochObs(const RegionTrace &Region,
                                     unsigned LineShift,
                                     const conflict::PadSet *Pads = nullptr);

/// Runs the ordered-commit protocol reference over one region instance.
/// \p Window is the in-flight epoch window the live run used.
ProtocolCounts replayRegion(const RegionTrace &Region, unsigned Window,
                            unsigned LineShift,
                            const conflict::PadSet *Pads = nullptr);

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_REPLAY_H
