//===- rt/RtEngine.h - Real-threads region coordinator ----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-threads execution backend's coordinator: a RegionExecutor that
/// runs each parallel region instance's epochs on a worker thread pool
/// under the deterministic ordered-commit protocol (rt/Protocol.h).
///
/// Division of labor:
///  - Worker threads run speculative epoch attempts (rt/EpochEngine.h)
///    against committed shared memory with private write buffers.
///  - The coordinator (the interpreter's calling thread) owns all protocol
///    decisions: head validation, write-buffer commit, cascade squashes,
///    re-dispatch, watchdog/demotion, fault-injector rolls, and every
///    ledger event — so EventLog::global() resolves exactly as it does on
///    the simulator paths and the injector never races.
///
/// Recovery ladder: squash cascades retry with reassigned snapshots
/// (livelock-free by construction); thread-targeted faults add bounded
/// exponential backoff; the watchdog demotes a region to sequential
/// execution on a wall-clock no-progress timeout or a squash-budget
/// overflow. Demotion returns false from executeRegion, which makes the
/// interpreter run the region instance sequentially on its own untouched
/// memory — bit-identical output by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_RTENGINE_H
#define SPECSYNC_RT_RTENGINE_H

#include "interp/Decoded.h"
#include "interp/RegionOracle.h"
#include "rt/RtOptions.h"
#include "sim/FaultInjector.h"
#include "sim/TLSSimulator.h"
#include "support/ThreadPool.h"

namespace specsync {
namespace rt {

class RtEngine : public RegionExecutor {
public:
  /// \p DP and \p Oracle must outlive the engine; the oracle comes from a
  /// RecordOracle run of the same decoded program.
  RtEngine(const DecodedProgram &DP, const RegionOracle &Oracle,
           const RtOptions &Opts);
  ~RtEngine() override;

  bool executeRegion(unsigned Instance, Memory &Mem, Random &Rng,
                     int64_t *Frame, unsigned NumRegs,
                     uint32_t &ExitPC) override;

  /// Copies the run-level aggregates (protocol counts, waste, region and
  /// watchdog tallies, fired fault counts, geometry) into \p R.
  void fill(RtRunResult &R) const;

  /// The coordinator's own accumulation of what the parallel attempts did
  /// — the numbers the event-ledger analyses must reconcile with
  /// (ForensicsResult::RawSim; IssueWidth 1).
  const TLSSimResult &rawSim() const { return RawSim; }

  unsigned threads() const { return Pool.numThreads(); }
  unsigned window() const { return Window; }
  const ProtocolCounts &counts() const { return Counts; }

private:
  const DecodedProgram &DP;
  const RegionOracle &Oracle;
  RtOptions Opts;
  ThreadPool Pool;
  FaultInjector Injector;
  unsigned Window = 1;
  unsigned RegionFunc = 0;
  uint32_t HeaderPC = 0;
  bool HaveRegion = false;

  // Run-level aggregates (coordinator-only).
  ProtocolCounts Counts;
  uint64_t WastedSteps = 0;
  uint64_t RegionsParallel = 0;
  uint64_t RegionsSequential = 0;
  uint64_t RegionsDemoted = 0;
  uint64_t WatchdogTrips = 0;
  uint64_t BackoffRetries = 0;
  uint64_t LC = 0; ///< Logical clock stamped into event Cycle fields.
  TLSSimResult RawSim;
};

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_RTENGINE_H
