//===- rt/Protocol.h - Deterministic ordered-commit protocol ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculation protocol shared by the real-threads engine (RtEngine)
/// and the trace-driven replay reference (Replay). The load-bearing design
/// property is *schedule independence*: every protocol-visible decision —
/// which epochs a cascade squashes, what snapshot a retry runs with,
/// whether forwarding is available, the validation verdict — is a pure
/// function of protocol state transitions, never of thread timing. Both
/// backends drive the same CommitWindow/validateAtHead/countStalls code,
/// so their ProtocolCounts agree exactly on every workload.
///
/// Protocol sketch (W = window size, epochs commit strictly in order):
///  - Epoch j's attempt carries a *snapshot* s <= j: the committed prefix
///    it was dispatched against. Initial dispatches use s = NextToCommit
///    at dispatch time.
///  - Validation happens only at the head (j == NextToCommit), after the
///    attempt finishes: RAW-fail iff the attempt's exposed read-line set
///    intersects the committed write-line set of any epoch in [s, j);
///    then the SAB rule (forward used from a group the producer later
///    overwrote). Order is fixed: RAW first, then SAB.
///  - On failure the cascade squashes *every* dispatched epoch >= j and
///    reassigns their snapshots to j. The head's retry (s == j) has an
///    empty conflict range, runs with forwarding disabled, and therefore
///    validates clean — the protocol is livelock-free by construction.
///  - Forwarding is enabled exactly when s < j (there is a producer whose
///    signals the attempt may consume). Attempts with s == j never block.
///
/// Verdict equality with the replay reference: an attempt is sequential-
/// equivalent up to its first read of a line later invalidated by [s, j)
/// commits; such a read appears in the committed trace's read set at the
/// same position, so both sides see a non-empty intersection. An attempt
/// with no such read *is* the committed execution and both sides pass.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_PROTOCOL_H
#define SPECSYNC_RT_PROTOCOL_H

#include "rt/RtOptions.h"
#include "sim/ConflictRules.h"

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

namespace specsync {
namespace rt {

/// A memory forward published by `signal.mem`: the first signal per
/// (epoch, group) wins on both backends; Addr 0 is the NULL signal.
struct MemSignal {
  uint64_t Addr = 0;
  int64_t Value = 0;
  /// The producer stored to Addr after signaling — consumers that used the
  /// forward fail SAB validation.
  bool SabDirty = false;
};

/// One executed wait, in program order (stall accounting is analytic: a
/// committed wait stalls iff the committed producer never explicitly
/// signaled that channel/group).
struct WaitRec {
  bool IsMem = false;
  int32_t Id = -1;
};

/// The protocol-visible summary of one epoch attempt's execution — the
/// engine builds it from a real speculative run, the replay derives it
/// from the committed trace. Validation and stall counting consume only
/// this record.
struct EpochObs {
  conflict::LineTable Reads;  ///< Exposed read lines (forwarded uses excluded).
  conflict::LineTable Writes; ///< Written lines (first writer owns the line).
  std::vector<WaitRec> Waits;
  std::unordered_set<int32_t> ScalarSignals; ///< Explicitly signaled channels.
  std::map<int32_t, MemSignal> MemSignals;   ///< Group -> first forward.
  std::vector<int32_t> FwdUsed; ///< Groups whose forward this epoch consumed.
  /// Replay only: the sequentially-loaded value of each consumed group's
  /// first forwarded load — the replay's stand-in for reading committed
  /// shared memory during the forward value check (see validateAtHead).
  std::map<int32_t, int64_t> FwdFirstValue;
  uint64_t Steps = 0;           ///< Executed instructions (waste currency).
  bool Overran = false;         ///< Step cap hit (engine only): forced fail.

  explicit EpochObs(unsigned LineShift,
                    const conflict::PadSet *Pads = nullptr)
      : Reads(LineShift, Pads), Writes(LineShift, Pads) {}
};

/// Validation outcome at the commit point.
struct Verdict {
  enum Kind : uint8_t { Pass, RawConflict, SabConflict } K = Pass;
  uint64_t Line = 0;        ///< RawConflict: the conflicting cache line.
  uint64_t WriterEpoch = 0; ///< RawConflict: committed epoch that wrote it.
  int32_t Group = -1;       ///< SabConflict: the dirty forward group.

  bool passed() const { return K == Pass; }
};

/// Validates epoch \p Epoch's finished attempt (snapshot \p Snapshot) at
/// the head of the commit order. \p ObsOf returns the *committed*
/// observation of any epoch < Epoch. \p UseForwards must be the attempt's
/// dispatch-time forwarding flag (Snapshot < Epoch); when false the SAB
/// check is skipped because the attempt consumed nothing.
/// \p CommittedValue returns the sequential (all-prior-epochs-committed)
/// value of a consumed forward's address; a forward whose signaled value
/// went stale — the producer signaled before its last def, or an older
/// epoch owned the final value — fails like a SAB conflict. The engine
/// reads committed shared memory; the replay reads the consumer's
/// sequentially-traced load value (provably the same quantity).
///
/// Deterministic tie-breaks: the RAW scan walks writer epochs ascending
/// and reports the smallest conflicting line of the first conflicting
/// writer; the SAB scan walks FwdUsed in recorded order.
inline Verdict
validateAtHead(const EpochObs &Obs, uint64_t Epoch, uint64_t Snapshot,
               bool UseForwards,
               const std::function<const EpochObs &(uint64_t)> &ObsOf,
               const std::function<int64_t(int32_t, uint64_t)>
                   &CommittedValue) {
  for (uint64_t W = Snapshot; W < Epoch; ++W) {
    const EpochObs &Writer = ObsOf(W);
    if (Obs.Reads.intersects(Writer.Writes)) {
      Verdict V;
      V.K = Verdict::RawConflict;
      V.Line = Obs.Reads.firstConflict(Writer.Writes);
      V.WriterEpoch = W;
      return V;
    }
  }
  if (Obs.Overran) {
    // A mis-speculated runaway whose divergence point raced out of the
    // conflict range above (cannot happen for a correctly summarized
    // attempt — see the header comment — but the cap must fail safe).
    Verdict V;
    V.K = Verdict::RawConflict;
    V.Line = ~0ull;
    V.WriterEpoch = Snapshot;
    return V;
  }
  if (UseForwards && Epoch > 0) {
    const EpochObs &Producer = ObsOf(Epoch - 1);
    for (int32_t G : Obs.FwdUsed) {
      auto It = Producer.MemSignals.find(G);
      if (It == Producer.MemSignals.end())
        continue; // Unreachable: a forward can only come from a signal.
      Verdict V;
      V.K = Verdict::SabConflict;
      V.Group = G;
      if (It->second.SabDirty)
        return V;
      if (CommittedValue &&
          CommittedValue(G, It->second.Addr) != It->second.Value)
        return V; // Stale forward: signaled value != sequential value.
    }
  }
  return Verdict{};
}

/// Analytic sync-stall counts for a *committed* epoch: a wait stalls iff
/// the committed producer (epoch - 1) never explicitly signaled that
/// channel/group. Epoch 0 has no producer and never stalls (its waits
/// complete against pre-region state on both backends).
struct StallCounts {
  uint64_t Scalar = 0;
  uint64_t Mem = 0;
};

inline StallCounts countStalls(const EpochObs &Obs, const EpochObs *Producer) {
  StallCounts S;
  if (!Producer)
    return S;
  for (const WaitRec &W : Obs.Waits) {
    if (W.IsMem) {
      if (!Producer->MemSignals.count(W.Id))
        ++S.Mem;
    } else {
      if (!Producer->ScalarSignals.count(W.Id))
        ++S.Scalar;
    }
  }
  return S;
}

/// Ordered-commit window bookkeeping: which epochs are dispatched, what
/// snapshot each current attempt carries, and the squash/commit
/// transitions. Driven identically by both backends; all methods are
/// called under the coordinator's protocol lock (or single-threaded in
/// the replay).
class CommitWindow {
public:
  CommitWindow(uint64_t NumEpochs, unsigned Window)
      : N(NumEpochs), Snap(NumEpochs, 0) {
    Dispatched = Window < N ? Window : N;
    // Initial dispatches all observe NextToCommit == 0.
  }

  uint64_t numEpochs() const { return N; }
  uint64_t head() const { return Head; }
  uint64_t dispatched() const { return Dispatched; }
  bool done() const { return Head == N; }

  uint64_t snapshot(uint64_t Epoch) const { return Snap[Epoch]; }
  bool useForwards(uint64_t Epoch) const { return Snap[Epoch] < Epoch; }

  /// The head attempt failed validation (or was spuriously aborted):
  /// squash [head, dispatched) and reassign every snapshot to head.
  /// Returns the number of attempts squashed.
  uint64_t squashFromHead() {
    for (uint64_t E = Head; E < Dispatched; ++E)
      Snap[E] = Head;
    return Dispatched - Head;
  }

  /// The head attempt committed. Advances the head and dispatches at most
  /// one new epoch (snapshot = the new NextToCommit). Returns the newly
  /// dispatched epoch, or ~0 when none remain.
  uint64_t commitHead() {
    ++Head;
    if (Dispatched < N) {
      Snap[Dispatched] = Head;
      return Dispatched++;
    }
    return ~0ull;
  }

private:
  uint64_t N;
  uint64_t Head = 0;
  uint64_t Dispatched = 0;
  std::vector<uint64_t> Snap;
};

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_PROTOCOL_H
