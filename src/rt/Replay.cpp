//===- rt/Replay.cpp --------------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Replay.h"

#include "ir/Opcode.h"
#include "ir/Remedy.h"

#include <unordered_map>
#include <unordered_set>

using namespace specsync;
using namespace specsync::rt;

std::vector<EpochObs> rt::deriveEpochObs(const RegionTrace &Region,
                                         unsigned LineShift,
                                         const conflict::PadSet *Pads) {
  std::vector<EpochObs> Out;
  Out.reserve(Region.Epochs.size());

  // Pass 1: signals, waits and steps (no cross-epoch dependence).
  for (const EpochTrace &E : Region.Epochs) {
    EpochObs Obs(LineShift, Pads);
    Obs.Steps = E.Insts.size();
    // Addresses this epoch has signaled so far -> signaling groups, for
    // the forward-then-overwrite dirty rule.
    std::unordered_map<uint64_t, std::vector<int32_t>> SignaledAddrs;
    for (const DynInst &DI : E.Insts) {
      switch (DI.Op) {
      case Opcode::SignalScalar:
        Obs.ScalarSignals.insert(DI.SyncId);
        break;
      case Opcode::SignalMem:
        if (!Obs.MemSignals.count(DI.SyncId)) { // First signal wins.
          Obs.MemSignals[DI.SyncId] =
              MemSignal{DI.Addr, static_cast<int64_t>(DI.Value), false};
          SignaledAddrs[DI.Addr].push_back(DI.SyncId);
        }
        break;
      case Opcode::WaitScalar:
        Obs.Waits.push_back(WaitRec{false, DI.SyncId});
        break;
      case Opcode::WaitMem:
        Obs.Waits.push_back(WaitRec{true, DI.SyncId});
        break;
      case Opcode::Store: {
        auto It = SignaledAddrs.find(DI.Addr);
        if (It != SignaledAddrs.end())
          for (int32_t G : It->second)
            Obs.MemSignals[G].SabDirty = true;
        break;
      }
      default:
        break;
      }
    }
    Out.push_back(std::move(Obs));
  }

  // Pass 2: read/write line sets with the forwarding rules applied against
  // the producer's (now known) signal set — mirroring EpochEngine's load
  // classification exactly.
  for (size_t J = 0; J < Region.Epochs.size(); ++J) {
    EpochObs &Obs = Out[J];
    const EpochObs *Producer = J > 0 ? &Out[J - 1] : nullptr;
    std::unordered_set<uint64_t> LocalWrites;
    std::unordered_set<int32_t> WaitedMem;
    std::unordered_map<int32_t, uint64_t> FwdAddr; // Armed forwards.
    for (const DynInst &DI : Region.Epochs[J].Insts) {
      switch (DI.Op) {
      case Opcode::WaitMem:
        WaitedMem.insert(DI.SyncId);
        break;
      case Opcode::CheckFwd: {
        bool Armed = false;
        if (DI.Addr != 0 && Producer && WaitedMem.count(DI.SyncId)) {
          auto Sig = Producer->MemSignals.find(DI.SyncId);
          if (Sig != Producer->MemSignals.end() &&
              Sig->second.Addr == DI.Addr) {
            FwdAddr[DI.SyncId] = DI.Addr;
            Armed = true;
          }
        }
        if (!Armed)
          FwdAddr.erase(DI.SyncId);
        break;
      }
      case Opcode::Load: {
        if (!conflict::exposedRead(LocalWrites, DI.Addr))
          break; // Own store covers the read.
        auto FA = DI.SyncId >= 0 ? FwdAddr.find(DI.SyncId) : FwdAddr.end();
        if (FA != FwdAddr.end() && FA->second == DI.Addr) {
          if (!Obs.FwdFirstValue.count(DI.SyncId)) {
            Obs.FwdUsed.push_back(DI.SyncId);
            Obs.FwdFirstValue[DI.SyncId] = static_cast<int64_t>(DI.Value);
          }
          break; // Consumed forward: immune, not an exposed read.
        }
        Obs.Reads.insert(DI.Addr, conflict::LineTable::Entry{
                                      DI.StaticId, DI.Context, DI.SyncId});
        break;
      }
      case Opcode::Store:
        LocalWrites.insert(DI.Addr);
        // Privatized stores still cover the epoch's own later reads (rule
        // 2) but never enter the write summary — mirroring the engine.
        if (DI.Remedy != static_cast<uint8_t>(RemedyKind::Privatize))
          Obs.Writes.insert(DI.Addr, conflict::LineTable::Entry{
                                         DI.StaticId, DI.Context, DI.SyncId});
        break;
      default:
        break;
      }
    }
  }
  return Out;
}

ProtocolCounts rt::replayRegion(const RegionTrace &Region, unsigned Window,
                                unsigned LineShift,
                                const conflict::PadSet *Pads) {
  ProtocolCounts C;
  C.Regions = 1;
  std::vector<EpochObs> Obs = deriveEpochObs(Region, LineShift, Pads);
  const uint64_t N = Obs.size();
  if (N == 0)
    return C;

  CommitWindow CW(N, Window == 0 ? 1 : Window);
  auto ObsOf = [&](uint64_t E) -> const EpochObs & { return Obs[E]; };

  while (!CW.done()) {
    uint64_t J = CW.head();
    // The consumer's own sequentially-recorded first forwarded load IS the
    // committed value of that address at its read point (the consumer has
    // not stored it yet — consumption requires an uncovered word).
    auto CommittedValue = [&](int32_t G, uint64_t) -> int64_t {
      return Obs[J].FwdFirstValue.at(G);
    };
    Verdict V = validateAtHead(Obs[J], J, CW.snapshot(J), CW.useForwards(J),
                               ObsOf, CommittedValue);
    if (!V.passed()) {
      if (V.K == Verdict::RawConflict)
        ++C.Violations;
      else
        ++C.SabViolations;
      C.EpochsSquashed += CW.squashFromHead();
      continue;
    }
    StallCounts S = countStalls(Obs[J], J > 0 ? &Obs[J - 1] : nullptr);
    C.SyncStallsScalar += S.Scalar;
    C.SyncStallsMem += S.Mem;
    ++C.EpochsCommitted;
    CW.commitHead();
  }
  return C;
}
