//===- rt/EpochEngine.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
//
// One epoch attempt, executed with the fast interpreter's pre-decoded
// semantics (the arithmetic/branch/call cases mirror Interpreter.cpp's
// runFast exactly — the differential suite depends on bit-equal results)
// plus the speculation layer: private write buffer, forward consumption,
// exposed-read/write line summaries, abort polling, and the step cap.
//
//===----------------------------------------------------------------------===//

#include "rt/EpochEngine.h"

#include "interp/Native.h"
#include "interp/OpArith.h"
#include "ir/Remedy.h"
#include "support/Random.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace specsync;
using namespace specsync::rt;

SyncPort::~SyncPort() = default;

namespace {

/// A suspended activation record (same layout discipline as the fast
/// engine's DFrame: constant slots at [Base - numConsts, Base), registers
/// at [Base, Base + NumRegs)).
struct AFrame {
  const DecodedFunction *Func = nullptr;
  uint32_t Base = 0;
  int32_t RetReg = -1;
  uint32_t ResumePC = 0;
};

/// Attempt-local speculation state shared between the host switch and the
/// Spec-mode native memory helpers (NativeCtx::SpecState): both call the
/// spec*Impl functions below, so buffered-store / forwarding / summary
/// semantics are one implementation.
struct SpecState {
  EpochExec *Out = nullptr;
  const EpochEnv *Env = nullptr;
  std::map<int32_t, uint64_t> *FwdAddr = nullptr;
  std::map<int32_t, int64_t> *FwdVal = nullptr;
  std::map<int32_t, uint64_t> *OwnSignalAddr = nullptr;
};

int64_t specLoadImpl(SpecState &S, uint64_t Addr, const DecodedInst &I) {
  EpochObs &Obs = S.Out->Obs;
  auto WB = S.Out->WriteBuf.find(Addr);
  if (WB != S.Out->WriteBuf.end())
    return WB->second; // Own store covers the read (rule 2).
  auto FA = I.SyncId >= 0 ? S.FwdAddr->find(I.SyncId) : S.FwdAddr->end();
  if (FA != S.FwdAddr->end() && FA->second == Addr) {
    // Memory-resident value communication: consume the forward and stay
    // immune to the producer's buffered store of this line.
    if (std::find(Obs.FwdUsed.begin(), Obs.FwdUsed.end(), I.SyncId) ==
        Obs.FwdUsed.end())
      Obs.FwdUsed.push_back(I.SyncId);
    return (*S.FwdVal)[I.SyncId];
  }
  int64_t V = S.Env->Shared.loadWord(Addr);
  Obs.Reads.insert(Addr,
                   conflict::LineTable::Entry{I.StaticId, 0, I.SyncId});
  return V;
}

void specStoreImpl(SpecState &S, uint64_t Addr, int64_t V,
                   const DecodedInst &I) {
  EpochObs &Obs = S.Out->Obs;
  S.Out->WriteBuf[Addr] = V;
  // A privatized store writes a provably epoch-local (or false-shared)
  // location: the write buffer still carries the value to commit, but
  // the line never enters the write summary, so it cannot violate a
  // later epoch's read mark.
  if (I.TFlags != static_cast<uint8_t>(RemedyKind::Privatize))
    Obs.Writes.insert(Addr,
                      conflict::LineTable::Entry{I.StaticId, 0, I.SyncId});
  // Forward-then-overwrite: a store to an address this epoch already
  // signaled dirties the forward (consumers fail SAB validation).
  for (auto &[G, SigAddr] : *S.OwnSignalAddr)
    if (SigAddr == Addr)
      Obs.MemSignals[G].SabDirty = true;
}

void specReduceImpl(SpecState &S, uint64_t Addr, int64_t V,
                    ReduceOpKind K) {
  // Reduction expansion: accumulate a per-epoch partial instead of the
  // load-modify-store the compiler rewrote away. The location never
  // enters the read or write summaries (the matcher proved no other
  // reference aliases it); the partial folds into shared memory at
  // in-order commit, which reproduces the sequential value exactly
  // (wraparound uint64 ops are associative).
  auto It =
      S.Out->ReduceAcc
          .try_emplace(Addr, static_cast<uint8_t>(K), reduceIdentity(K))
          .first;
  It->second.second = applyReduceOp(K, It->second.second, V);
}

int64_t nativeSpecLoad(NativeCtx *C, uint64_t Addr, uint32_t InstIdx) {
  auto &S = *static_cast<SpecState *>(C->SpecState);
  return specLoadImpl(S, Addr, C->CurInsts[InstIdx]);
}

void nativeSpecStore(NativeCtx *C, uint64_t Addr, int64_t V,
                     uint32_t InstIdx) {
  auto &S = *static_cast<SpecState *>(C->SpecState);
  specStoreImpl(S, Addr, V, C->CurInsts[InstIdx]);
}

void nativeSpecReduce(NativeCtx *C, uint64_t Addr, int64_t V, int64_t Kind,
                      uint32_t) {
  auto &S = *static_cast<SpecState *>(C->SpecState);
  specReduceImpl(S, Addr, V, static_cast<ReduceOpKind>(Kind));
}

} // namespace

EpochExec rt::runSpeculativeEpoch(const EpochEnv &Env, const EpochStart &Entry,
                                  uint64_t StepCap, bool UseForwards,
                                  SyncPort &Port,
                                  std::atomic<uint64_t> &StepsOut) {
  EpochExec Out(Env.LineShift, Env.Pads);
  EpochObs &Obs = Out.Obs;

  Random Rng(0);
  Rng.setState(Entry.RngState);

  // Forwarding state: per group, the armed address (check.fwd matched) and
  // value, plus which groups this epoch waited on / signaled itself.
  std::map<int32_t, uint64_t> FwdAddr; // Armed: group -> address.
  std::map<int32_t, int64_t> FwdVal;
  std::map<int32_t, uint64_t> OwnSignalAddr; // First own signal per group.
  std::vector<int32_t> WaitedMem;

  SpecState SS{&Out, &Env, &FwdAddr, &FwdVal, &OwnSignalAddr};

  auto waitedOn = [&](int32_t G) {
    return std::find(WaitedMem.begin(), WaitedMem.end(), G) != WaitedMem.end();
  };

  // Register/frame stacks. The region function's frame is the base; its
  // constants sit below the oracle-provided registers.
  const DecodedFunction *F = &Env.DP.function(Env.RegionFunc);
  std::vector<int64_t> RegStack;
  RegStack.assign(std::max<size_t>(1024, F->frameSize()), 0);
  std::copy(F->Consts.begin(), F->Consts.end(), RegStack.begin());
  uint32_t Base = F->numConsts();
  if (RegStack.size() < static_cast<size_t>(Base) + F->NumRegs)
    RegStack.resize(Base + F->NumRegs);
  std::copy(Entry.Frame.begin(), Entry.Frame.end(), RegStack.begin() + Base);

  std::vector<AFrame> Frames;
  Frames.reserve(16);
  Frames.push_back(AFrame{F, Base, -1, 0});
  uint32_t PC = Env.HeaderPC;
  unsigned FIdx = Env.RegionFunc;
  int64_t *R = RegStack.data() + Base;
  const DecodedOp *FOps = F->Ops.data();

  auto opval = [&](DecodedOp Idx) -> int64_t { return R[Idx]; };

  // Spec-mode native tier. Calls, returns, sync ops, and region-relevant
  // branches are exit-class (the host switch below runs them, keeping the
  // frame depth constant during a native run), so the gate bytes computed
  // at entry stay valid until the next exit. StepLimit leaves the segment
  // margin below StepCap so the exact ++Steps > StepCap overrun point is
  // always reached by per-instruction host interpretation, and each run is
  // chunked so abort polling keeps its latency bound.
  const NativeModule *NM =
      Env.Native && Env.Native->mode() == NativeMode::Spec ? Env.Native
                                                           : nullptr;
  uint64_t HostLimit = 0;
  NativeCtx Ctx{};
  if (NM) {
    uint64_t Margin = NM->maxSegment() + 2;
    HostLimit = StepCap > Margin ? StepCap - Margin : 0;
    Ctx.LoadHelper = nativeSpecLoad;
    Ctx.StoreHelper = nativeSpecStore;
    Ctx.ReduceHelper = nativeSpecReduce;
    Ctx.SpecState = &SS;
  }
  constexpr uint64_t PollChunk = 4096;

  uint64_t Steps = 0;
  for (;;) {
    if ((Steps & 63) == 0) {
      StepsOut.store(Steps, std::memory_order_relaxed);
      if (Port.aborted()) {
        Out.Kind = EpochExitKind::Aborted;
        return Out;
      }
    }
    if (NM && Steps < HostLimit && NM->entryOK(FIdx, PC)) {
      Ctx.R = R;
      Ctx.Steps = Steps;
      Ctx.StepLimit = std::min(HostLimit, Steps + PollChunk);
      Ctx.RngState = Rng.state();
      Ctx.CurInsts = F->Insts.data();
      const bool AtDepth = Frames.size() == 1;
      Ctx.HeaderAction =
          AtDepth ? NativeCtx::HeaderExit : NativeCtx::HeaderGo;
      Ctx.ExitGate = AtDepth ? 1 : 0;
      NativeExit E = NM->execute(Ctx, FIdx, PC);
      Rng.setState(Ctx.RngState);
      Steps = Ctx.Steps;
      PC = Ctx.ExitPC;
      StepsOut.store(Steps, std::memory_order_relaxed);
      if (Port.aborted()) {
        Out.Kind = EpochExitKind::Aborted;
        return Out;
      }
      if (E == NativeExit::Budget)
        continue;
      // HostInst: fall through and interpret the parked instruction.
    }
    if (++Steps > StepCap) {
      // Runaway mis-speculation (e.g. a stale trip count): forced fail.
      Obs.Overran = true;
      Out.Kind = EpochExitKind::ForcedFail;
      break;
    }

    const DecodedInst &I = F->Insts[PC];

    switch (I.Op) {
    case Opcode::Const:
    case Opcode::Move:
      R[I.Dest] = opval(FOps[I.OpBegin]);
      break;

#define SPECSYNC_RT_BINOP(OPC, EXPR)                                         \
  case Opcode::OPC: {                                                        \
    int64_t A = opval(FOps[I.OpBegin]);                                      \
    int64_t B = opval(FOps[I.OpBegin + 1]);                                  \
    R[I.Dest] = (EXPR);                                                      \
    break;                                                                   \
  }
      SPECSYNC_RT_BINOP(Add, wrapAdd(A, B))
      SPECSYNC_RT_BINOP(Sub, wrapSub(A, B))
      SPECSYNC_RT_BINOP(Mul, wrapMul(A, B))
      // Total wrapping semantics shared by every tier (interp/OpArith.h).
      SPECSYNC_RT_BINOP(Div, totalDiv(A, B))
      SPECSYNC_RT_BINOP(Mod, totalMod(A, B))
      SPECSYNC_RT_BINOP(And, A &B)
      SPECSYNC_RT_BINOP(Or, A | B)
      SPECSYNC_RT_BINOP(Xor, A ^ B)
      SPECSYNC_RT_BINOP(Shl, static_cast<int64_t>(static_cast<uint64_t>(A)
                                                  << (static_cast<uint64_t>(
                                                          B) &
                                                      63)))
      SPECSYNC_RT_BINOP(Shr, static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                                  (static_cast<uint64_t>(B) &
                                                   63)))
      SPECSYNC_RT_BINOP(CmpEQ, A == B)
      SPECSYNC_RT_BINOP(CmpNE, A != B)
      SPECSYNC_RT_BINOP(CmpLT, A < B)
      SPECSYNC_RT_BINOP(CmpLE, A <= B)
      SPECSYNC_RT_BINOP(CmpGT, A > B)
      SPECSYNC_RT_BINOP(CmpGE, A >= B)
#undef SPECSYNC_RT_BINOP

    case Opcode::Select:
      R[I.Dest] = opval(FOps[I.OpBegin]) != 0 ? opval(FOps[I.OpBegin + 1])
                                              : opval(FOps[I.OpBegin + 2]);
      break;
    case Opcode::Rand:
      R[I.Dest] = static_cast<int64_t>(Rng.next() & 0x7fffffffffffffffull);
      break;

    case Opcode::Load: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      R[I.Dest] = specLoadImpl(SS, Addr, I);
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      specStoreImpl(SS, Addr, opval(FOps[I.OpBegin + 1]), I);
      break;
    }
    case Opcode::Reduce: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      int64_t V = opval(FOps[I.OpBegin + 1]);
      specReduceImpl(SS, Addr, V,
                     static_cast<ReduceOpKind>(opval(FOps[I.OpBegin + 2])));
      break;
    }

    case Opcode::WaitScalar:
      // Scalars travel via the epoch-entry frame oracle; the wait is
      // recorded for analytic stall accounting and never blocks.
      Obs.Waits.push_back(WaitRec{false, I.SyncId});
      break;
    case Opcode::WaitMem:
      Obs.Waits.push_back(WaitRec{true, I.SyncId});
      if (!waitedOn(I.SyncId))
        WaitedMem.push_back(I.SyncId);
      if (UseForwards && !Port.waitMem(I.SyncId)) {
        Out.Kind = EpochExitKind::Aborted;
        return Out;
      }
      break;
    case Opcode::SelectFwd:
      break; // Timing-only marker.

    case Opcode::SignalScalar:
      Obs.ScalarSignals.insert(I.SyncId);
      break;
    case Opcode::SignalMem: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      int64_t V = opval(FOps[I.OpBegin + 1]);
      if (!Obs.MemSignals.count(I.SyncId)) { // First signal wins.
        Obs.MemSignals[I.SyncId] = MemSignal{Addr, V, false};
        OwnSignalAddr[I.SyncId] = Addr;
        Port.publishSignal(I.SyncId, Addr, V);
      }
      break;
    }
    case Opcode::CheckFwd: {
      uint64_t A = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      bool Armed = false;
      if (UseForwards && A != 0 && waitedOn(I.SyncId)) {
        uint64_t SigAddr = 0;
        int64_t SigVal = 0;
        if (Port.lookupSignal(I.SyncId, SigAddr, SigVal) && SigAddr == A) {
          FwdAddr[I.SyncId] = A;
          FwdVal[I.SyncId] = SigVal;
          Armed = true;
        }
      }
      if (!Armed)
        FwdAddr.erase(I.SyncId);
      break;
    }

    case Opcode::Br:
    case Opcode::CondBr: {
      uint32_t T;
      uint8_t Fl;
      if (I.Op == Opcode::Br || opval(FOps[I.OpBegin]) != 0) {
        T = I.T0;
        Fl = I.TFlags & 3;
      } else {
        T = I.T1;
        Fl = (I.TFlags >> 2) & 3;
      }
      if (F->IsRegionFunc && Frames.size() == 1) {
        if (Fl & 1) {
          // Back edge: this branch closes the epoch (it belongs to it,
          // matching the trace's epoch boundary convention).
          Out.Kind = EpochExitKind::NextEpoch;
          goto done;
        }
        if (!(Fl & 2)) {
          Out.Kind = EpochExitKind::RegionExit;
          Out.ExitPC = T;
          goto done;
        }
      }
      PC = T;
      continue;
    }

    case Opcode::Call: {
      const DecodedFunction &Callee = Env.DP.function(I.T0);
      uint32_t NewBase = Base + F->NumRegs + Callee.numConsts();
      if (RegStack.size() < static_cast<size_t>(NewBase) + Callee.NumRegs) {
        RegStack.resize(std::max(
            static_cast<size_t>(NewBase) + Callee.NumRegs,
            RegStack.size() * 2));
        R = RegStack.data() + Base;
      }
      int64_t *CR = RegStack.data() + NewBase;
      std::copy(Callee.Consts.begin(), Callee.Consts.end(),
                CR - Callee.numConsts());
      std::fill_n(CR, Callee.NumRegs, 0);
      for (unsigned A = 0; A < I.NumOps; ++A)
        CR[A] = R[FOps[I.OpBegin + A]];
      Frames.back().ResumePC = PC + 1;
      Frames.push_back(AFrame{&Callee, NewBase, I.Dest, 0});
      F = &Callee;
      FIdx = I.T0;
      FOps = F->Ops.data();
      PC = 0;
      Base = NewBase;
      R = CR;
      continue;
    }

    case Opcode::Ret: {
      if (Frames.size() == 1) {
        // A mis-speculated attempt fell out of the region; the committed
        // execution cannot do this (ret-exit regions never reach the rt
        // path), so fail it deterministically.
        Obs.Overran = true;
        Out.Kind = EpochExitKind::ForcedFail;
        goto done;
      }
      int64_t RetVal = I.NumOps == 1 ? opval(FOps[I.OpBegin]) : 0;
      AFrame Done = Frames.back();
      Frames.pop_back();
      const AFrame &Parent = Frames.back();
      F = Parent.Func;
      FIdx = static_cast<unsigned>(Parent.Func - &Env.DP.function(0));
      FOps = F->Ops.data();
      PC = Parent.ResumePC;
      Base = Parent.Base;
      R = RegStack.data() + Base;
      if (Done.RetReg >= 0)
        R[Done.RetReg] = RetVal;
      continue;
    }
    }

    ++PC;
  }

done:
  Obs.Steps = Steps;
  StepsOut.store(Steps, std::memory_order_relaxed);
  return Out;
}
