//===- rt/EpochEngine.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
//
// One epoch attempt, executed with the fast interpreter's pre-decoded
// semantics (the arithmetic/branch/call cases mirror Interpreter.cpp's
// runFast exactly — the differential suite depends on bit-equal results)
// plus the speculation layer: private write buffer, forward consumption,
// exposed-read/write line summaries, abort polling, and the step cap.
//
//===----------------------------------------------------------------------===//

#include "rt/EpochEngine.h"

#include "ir/Remedy.h"
#include "support/Random.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace specsync;
using namespace specsync::rt;

SyncPort::~SyncPort() = default;

namespace {

/// A suspended activation record (same layout discipline as the fast
/// engine's DFrame: constant slots at [Base - numConsts, Base), registers
/// at [Base, Base + NumRegs)).
struct AFrame {
  const DecodedFunction *Func = nullptr;
  uint32_t Base = 0;
  int32_t RetReg = -1;
  uint32_t ResumePC = 0;
};

} // namespace

EpochExec rt::runSpeculativeEpoch(const EpochEnv &Env, const EpochStart &Entry,
                                  uint64_t StepCap, bool UseForwards,
                                  SyncPort &Port,
                                  std::atomic<uint64_t> &StepsOut) {
  EpochExec Out(Env.LineShift, Env.Pads);
  EpochObs &Obs = Out.Obs;
  auto &WriteBuf = Out.WriteBuf;

  Random Rng(0);
  Rng.setState(Entry.RngState);

  // Forwarding state: per group, the armed address (check.fwd matched) and
  // value, plus which groups this epoch waited on / signaled itself.
  std::map<int32_t, uint64_t> FwdAddr; // Armed: group -> address.
  std::map<int32_t, int64_t> FwdVal;
  std::map<int32_t, uint64_t> OwnSignalAddr; // First own signal per group.
  std::vector<int32_t> WaitedMem;

  auto waitedOn = [&](int32_t G) {
    return std::find(WaitedMem.begin(), WaitedMem.end(), G) != WaitedMem.end();
  };

  // Register/frame stacks. The region function's frame is the base; its
  // constants sit below the oracle-provided registers.
  const DecodedFunction *F = &Env.DP.function(Env.RegionFunc);
  std::vector<int64_t> RegStack;
  RegStack.assign(std::max<size_t>(1024, F->frameSize()), 0);
  std::copy(F->Consts.begin(), F->Consts.end(), RegStack.begin());
  uint32_t Base = F->numConsts();
  if (RegStack.size() < static_cast<size_t>(Base) + F->NumRegs)
    RegStack.resize(Base + F->NumRegs);
  std::copy(Entry.Frame.begin(), Entry.Frame.end(), RegStack.begin() + Base);

  std::vector<AFrame> Frames;
  Frames.reserve(16);
  Frames.push_back(AFrame{F, Base, -1, 0});
  uint32_t PC = Env.HeaderPC;
  int64_t *R = RegStack.data() + Base;
  const DecodedOp *FOps = F->Ops.data();

  auto opval = [&](DecodedOp Idx) -> int64_t { return R[Idx]; };

  uint64_t Steps = 0;
  for (;;) {
    if ((Steps & 63) == 0) {
      StepsOut.store(Steps, std::memory_order_relaxed);
      if (Port.aborted()) {
        Out.Kind = EpochExitKind::Aborted;
        return Out;
      }
    }
    if (++Steps > StepCap) {
      // Runaway mis-speculation (e.g. a stale trip count): forced fail.
      Obs.Overran = true;
      Out.Kind = EpochExitKind::ForcedFail;
      break;
    }

    const DecodedInst &I = F->Insts[PC];

    switch (I.Op) {
    case Opcode::Const:
    case Opcode::Move:
      R[I.Dest] = opval(FOps[I.OpBegin]);
      break;

#define SPECSYNC_RT_BINOP(OPC, EXPR)                                         \
  case Opcode::OPC: {                                                        \
    int64_t A = opval(FOps[I.OpBegin]);                                      \
    int64_t B = opval(FOps[I.OpBegin + 1]);                                  \
    R[I.Dest] = (EXPR);                                                      \
    break;                                                                   \
  }
      SPECSYNC_RT_BINOP(Add, A + B)
      SPECSYNC_RT_BINOP(Sub, A - B)
      SPECSYNC_RT_BINOP(Mul, A *B)
      // Division/modulo by zero yield 0, matching both interpreters.
      SPECSYNC_RT_BINOP(Div, B == 0 ? 0 : A / B)
      SPECSYNC_RT_BINOP(Mod, B == 0 ? 0 : A % B)
      SPECSYNC_RT_BINOP(And, A &B)
      SPECSYNC_RT_BINOP(Or, A | B)
      SPECSYNC_RT_BINOP(Xor, A ^ B)
      SPECSYNC_RT_BINOP(Shl, static_cast<int64_t>(static_cast<uint64_t>(A)
                                                  << (static_cast<uint64_t>(
                                                          B) &
                                                      63)))
      SPECSYNC_RT_BINOP(Shr, static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                                  (static_cast<uint64_t>(B) &
                                                   63)))
      SPECSYNC_RT_BINOP(CmpEQ, A == B)
      SPECSYNC_RT_BINOP(CmpNE, A != B)
      SPECSYNC_RT_BINOP(CmpLT, A < B)
      SPECSYNC_RT_BINOP(CmpLE, A <= B)
      SPECSYNC_RT_BINOP(CmpGT, A > B)
      SPECSYNC_RT_BINOP(CmpGE, A >= B)
#undef SPECSYNC_RT_BINOP

    case Opcode::Select:
      R[I.Dest] = opval(FOps[I.OpBegin]) != 0 ? opval(FOps[I.OpBegin + 1])
                                              : opval(FOps[I.OpBegin + 2]);
      break;
    case Opcode::Rand:
      R[I.Dest] = static_cast<int64_t>(Rng.next() & 0x7fffffffffffffffull);
      break;

    case Opcode::Load: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      auto WB = WriteBuf.find(Addr);
      if (WB != WriteBuf.end()) {
        R[I.Dest] = WB->second; // Own store covers the read (rule 2).
      } else {
        auto FA = I.SyncId >= 0 ? FwdAddr.find(I.SyncId) : FwdAddr.end();
        if (FA != FwdAddr.end() && FA->second == Addr) {
          // Memory-resident value communication: consume the forward and
          // stay immune to the producer's buffered store of this line.
          R[I.Dest] = FwdVal[I.SyncId];
          if (std::find(Obs.FwdUsed.begin(), Obs.FwdUsed.end(), I.SyncId) ==
              Obs.FwdUsed.end())
            Obs.FwdUsed.push_back(I.SyncId);
        } else {
          R[I.Dest] = Env.Shared.loadWord(Addr);
          Obs.Reads.insert(
              Addr, conflict::LineTable::Entry{I.StaticId, 0, I.SyncId});
        }
      }
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      int64_t V = opval(FOps[I.OpBegin + 1]);
      WriteBuf[Addr] = V;
      // A privatized store writes a provably epoch-local (or false-shared)
      // location: the write buffer still carries the value to commit, but
      // the line never enters the write summary, so it cannot violate a
      // later epoch's read mark.
      if (I.TFlags != static_cast<uint8_t>(RemedyKind::Privatize))
        Obs.Writes.insert(
            Addr, conflict::LineTable::Entry{I.StaticId, 0, I.SyncId});
      // Forward-then-overwrite: a store to an address this epoch already
      // signaled dirties the forward (consumers fail SAB validation).
      for (auto &[G, SigAddr] : OwnSignalAddr)
        if (SigAddr == Addr)
          Obs.MemSignals[G].SabDirty = true;
      break;
    }
    case Opcode::Reduce: {
      // Reduction expansion: accumulate a per-epoch partial instead of the
      // load-modify-store the compiler rewrote away. The location never
      // enters the read or write summaries (the matcher proved no other
      // reference aliases it); the partial folds into shared memory at
      // in-order commit, which reproduces the sequential value exactly
      // (wraparound uint64 ops are associative).
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      int64_t V = opval(FOps[I.OpBegin + 1]);
      auto K = static_cast<ReduceOpKind>(opval(FOps[I.OpBegin + 2]));
      auto It = Out.ReduceAcc
                    .try_emplace(Addr, static_cast<uint8_t>(K),
                                 reduceIdentity(K))
                    .first;
      It->second.second = applyReduceOp(K, It->second.second, V);
      break;
    }

    case Opcode::WaitScalar:
      // Scalars travel via the epoch-entry frame oracle; the wait is
      // recorded for analytic stall accounting and never blocks.
      Obs.Waits.push_back(WaitRec{false, I.SyncId});
      break;
    case Opcode::WaitMem:
      Obs.Waits.push_back(WaitRec{true, I.SyncId});
      if (!waitedOn(I.SyncId))
        WaitedMem.push_back(I.SyncId);
      if (UseForwards && !Port.waitMem(I.SyncId)) {
        Out.Kind = EpochExitKind::Aborted;
        return Out;
      }
      break;
    case Opcode::SelectFwd:
      break; // Timing-only marker.

    case Opcode::SignalScalar:
      Obs.ScalarSignals.insert(I.SyncId);
      break;
    case Opcode::SignalMem: {
      uint64_t Addr = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      int64_t V = opval(FOps[I.OpBegin + 1]);
      if (!Obs.MemSignals.count(I.SyncId)) { // First signal wins.
        Obs.MemSignals[I.SyncId] = MemSignal{Addr, V, false};
        OwnSignalAddr[I.SyncId] = Addr;
        Port.publishSignal(I.SyncId, Addr, V);
      }
      break;
    }
    case Opcode::CheckFwd: {
      uint64_t A = static_cast<uint64_t>(opval(FOps[I.OpBegin]));
      bool Armed = false;
      if (UseForwards && A != 0 && waitedOn(I.SyncId)) {
        uint64_t SigAddr = 0;
        int64_t SigVal = 0;
        if (Port.lookupSignal(I.SyncId, SigAddr, SigVal) && SigAddr == A) {
          FwdAddr[I.SyncId] = A;
          FwdVal[I.SyncId] = SigVal;
          Armed = true;
        }
      }
      if (!Armed)
        FwdAddr.erase(I.SyncId);
      break;
    }

    case Opcode::Br:
    case Opcode::CondBr: {
      uint32_t T;
      uint8_t Fl;
      if (I.Op == Opcode::Br || opval(FOps[I.OpBegin]) != 0) {
        T = I.T0;
        Fl = I.TFlags & 3;
      } else {
        T = I.T1;
        Fl = (I.TFlags >> 2) & 3;
      }
      if (F->IsRegionFunc && Frames.size() == 1) {
        if (Fl & 1) {
          // Back edge: this branch closes the epoch (it belongs to it,
          // matching the trace's epoch boundary convention).
          Out.Kind = EpochExitKind::NextEpoch;
          goto done;
        }
        if (!(Fl & 2)) {
          Out.Kind = EpochExitKind::RegionExit;
          Out.ExitPC = T;
          goto done;
        }
      }
      PC = T;
      continue;
    }

    case Opcode::Call: {
      const DecodedFunction &Callee = Env.DP.function(I.T0);
      uint32_t NewBase = Base + F->NumRegs + Callee.numConsts();
      if (RegStack.size() < static_cast<size_t>(NewBase) + Callee.NumRegs) {
        RegStack.resize(std::max(
            static_cast<size_t>(NewBase) + Callee.NumRegs,
            RegStack.size() * 2));
        R = RegStack.data() + Base;
      }
      int64_t *CR = RegStack.data() + NewBase;
      std::copy(Callee.Consts.begin(), Callee.Consts.end(),
                CR - Callee.numConsts());
      std::fill_n(CR, Callee.NumRegs, 0);
      for (unsigned A = 0; A < I.NumOps; ++A)
        CR[A] = R[FOps[I.OpBegin + A]];
      Frames.back().ResumePC = PC + 1;
      Frames.push_back(AFrame{&Callee, NewBase, I.Dest, 0});
      F = &Callee;
      FOps = F->Ops.data();
      PC = 0;
      Base = NewBase;
      R = CR;
      continue;
    }

    case Opcode::Ret: {
      if (Frames.size() == 1) {
        // A mis-speculated attempt fell out of the region; the committed
        // execution cannot do this (ret-exit regions never reach the rt
        // path), so fail it deterministically.
        Obs.Overran = true;
        Out.Kind = EpochExitKind::ForcedFail;
        goto done;
      }
      int64_t RetVal = I.NumOps == 1 ? opval(FOps[I.OpBegin]) : 0;
      AFrame Done = Frames.back();
      Frames.pop_back();
      const AFrame &Parent = Frames.back();
      F = Parent.Func;
      FOps = F->Ops.data();
      PC = Parent.ResumePC;
      Base = Parent.Base;
      R = RegStack.data() + Base;
      if (Done.RetReg >= 0)
        R[Done.RetReg] = RetVal;
      continue;
    }
    }

    ++PC;
  }

done:
  Obs.Steps = Steps;
  StepsOut.store(Steps, std::memory_order_relaxed);
  return Out;
}
