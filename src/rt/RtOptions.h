//===- rt/RtOptions.h - Real-threads backend options/results ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration and result records for the real-threads execution backend
/// (`src/rt/`), which runs a program's parallel regions on actual OS
/// threads under the deterministic ordered-commit speculation protocol
/// (see Protocol.h). ProtocolCounts is the cross-validation currency: the
/// threaded run and the trace-driven replay reference must produce equal
/// counts on every workload, schedule-independently.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_RTOPTIONS_H
#define SPECSYNC_RT_RTOPTIONS_H

#include "sim/ConflictRules.h"
#include "sim/FaultInjector.h"

#include <cstdint>
#include <memory>

namespace specsync {

struct ForensicsResult;
class NativeModule;

namespace rt {

/// Tuning knobs for one real-threads run. Defaults give a deterministic,
/// fault-free run sized to the host.
struct RtOptions {
  unsigned Threads = 0; ///< Worker threads; 0 = ThreadPool::defaultJobs().
  /// In-flight epoch window. 0 = same as Threads. Always clamped to
  /// Threads: a window wider than the pool could park every worker in a
  /// blocked wait with the unblocking epoch still queued behind them.
  unsigned Window = 0;
  /// Total squashes per region before the watchdog demotes the region to
  /// sequential execution. 0 = off (protocol-level livelock freedom makes
  /// this a fault-containment bound, not a correctness requirement).
  uint64_t RegionSquashBudget = 0;
  /// Backoff sleep base (microseconds) applied by the coordinator after a
  /// squash when thread-targeted faults are active; doubles per retry of
  /// the same head epoch, capped at base << 6.
  unsigned BackoffBaseMicros = 32;
  /// Spurious aborts targeting one epoch before it is protected (no more
  /// injected aborts), mirroring the simulator's retry-limit rule.
  unsigned EpochRetryLimit = 8;
  /// Wall-clock milliseconds without a commit before the watchdog declares
  /// the region livelocked and demotes it to sequential execution.
  uint64_t NoProgressMillis = 10'000;
  /// Per-attempt step cap = SeqSteps * multiplier + 10000. A mis-speculated
  /// attempt can loop forever on a stale trip count; overrunning attempts
  /// are forced to fail validation (see Protocol.h for why this preserves
  /// count equality with the replay reference).
  uint64_t StepCapMultiplier = 16;
  /// Conflict-detection line granularity (log2 bytes); must match the
  /// simulator's cache-line shift for like-for-like violation counting.
  unsigned LineShift = 5;
  /// Words the Pad remedy granted their own conflict granule (owned by the
  /// remedy plan; null when remedies are off). Must match the simulator's
  /// pad set for like-for-like violation counting.
  const conflict::PadSet *Pads = nullptr;
  /// Thread-targeted fault plan (FaultPlan::rtEnabled() classes).
  FaultPlan Faults;
  /// Spec-mode lowered code for the worker epoch engine (must be built
  /// over the same DecodedProgram the engine runs), or null to interpret.
  const NativeModule *Native = nullptr;
};

/// Schedule-independent protocol event counts — the quantities the
/// differential suite compares between the threaded run and the replay.
/// Deliberately excludes wasted-step totals: cascade victims are aborted
/// mid-flight, so their partial step counts depend on thread timing (they
/// live in RtRunResult::WastedSteps instead).
struct ProtocolCounts {
  uint64_t Regions = 0;
  uint64_t EpochsCommitted = 0;
  uint64_t EpochsSquashed = 0;   ///< Attempts discarded by cascades.
  uint64_t Violations = 0;       ///< RAW validation failures at the head.
  uint64_t SabViolations = 0;    ///< Forward-then-overwrite failures.
  uint64_t SyncStallsScalar = 0; ///< Committed waits with no producer signal.
  uint64_t SyncStallsMem = 0;

  bool operator==(const ProtocolCounts &) const = default;

  ProtocolCounts &operator+=(const ProtocolCounts &O) {
    Regions += O.Regions;
    EpochsCommitted += O.EpochsCommitted;
    EpochsSquashed += O.EpochsSquashed;
    Violations += O.Violations;
    SabViolations += O.SabViolations;
    SyncStallsScalar += O.SyncStallsScalar;
    SyncStallsMem += O.SyncStallsMem;
    return *this;
  }
};

/// Outcome of running one program's regions on the threads backend.
struct RtRunResult {
  bool Completed = false;
  bool ChecksumMatch = false; ///< Final memory == sequential run's.
  uint64_t RtChecksum = 0;
  uint64_t SeqChecksum = 0;
  ProtocolCounts Counts;
  /// Instructions executed by discarded attempts (timing-dependent —
  /// excluded from the replay comparison on purpose).
  uint64_t WastedSteps = 0;
  uint64_t RegionsParallel = 0; ///< Region instances run speculatively.
  uint64_t RegionsSequential = 0; ///< Degenerate (ret-exit) instances.
  uint64_t RegionsDemoted = 0;  ///< Watchdog fallbacks to sequential.
  uint64_t WatchdogTrips = 0;
  uint64_t BackoffRetries = 0;
  uint64_t SpuriousAborts = 0;  ///< Injected head aborts that fired.
  uint64_t DelayedCommits = 0;
  uint64_t WorkerStalls = 0;
  /// The trace-driven replay reference's counts for the same program, and
  /// whether they equal Counts exactly (the cross-validation criterion).
  /// Only meaningful on fault-free runs: injected aborts perturb the
  /// protocol stream by design.
  ProtocolCounts Replay;
  bool CountsMatch = false;
  unsigned Threads = 0;
  unsigned Window = 0;
  double SeqWallMs = 0.0; ///< Oracle-recording sequential run wall time.
  double RtWallMs = 0.0;  ///< Threaded run wall time.
  /// Ledger analyses over the rt event stream (null when the EventLog was
  /// inactive); reconciles() holds against the coordinator's RawSim.
  std::shared_ptr<const ForensicsResult> Forensics;
};

/// Parses --rt-threads=N, --rt-window=N, --rt-squash-budget=N,
/// --rt-no-progress-ms=N, --rt-step-cap-mult=N into \p O. Unrecognized
/// arguments are left alone; argv is not mutated. Fault rates ride in via
/// parseRobustnessArgs (--fault-rt-*).
void parseRtArgs(int argc, char **argv, RtOptions &O);

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_RTOPTIONS_H
