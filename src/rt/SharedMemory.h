//===- rt/SharedMemory.h - Thread-shared committed memory -------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The committed memory image shared by all worker threads of the
/// real-threads backend. interp::Memory's single-entry page cache makes it
/// unusable concurrently, so the rt backend keeps its own sparse paged
/// store of relaxed atomics:
///
///  - Speculative epochs never write here (they buffer writes privately),
///    so every word a worker loads is committed state. Relaxed ordering is
///    sufficient because the protocol orders commits and dispatches through
///    the coordinator mutex: an attempt dispatched with snapshot S
///    happens-after the commit of every epoch < S, and reads racing with a
///    younger-epoch commit are exactly the mis-speculation the validation
///    rules catch by line intersection, not a data race on the word itself.
///  - Page creation takes a mutex (cold path: first store to a fresh
///    64 KiB page); page lookup is lock-free on a shared_mutex-free
///    read-mostly map guarded by the same mutex only on miss.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_RT_SHAREDMEMORY_H
#define SPECSYNC_RT_SHAREDMEMORY_H

#include "interp/Memory.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace specsync {
namespace rt {

/// Word-addressable paged memory with atomic words. Page geometry matches
/// interp::Memory so images copy across losslessly.
class SharedMemory {
public:
  static constexpr unsigned PageShift = Memory::PageShift;
  static constexpr uint64_t PageBytes = Memory::PageBytes;
  static constexpr uint64_t WordsPerPage = Memory::WordsPerPage;

  SharedMemory() = default;
  SharedMemory(const SharedMemory &) = delete;
  SharedMemory &operator=(const SharedMemory &) = delete;

  /// Seeds the image from a sequential interpreter memory (coordinator
  /// only, before workers start).
  void copyFrom(const Memory &M) {
    M.forEachPage([&](uint64_t Id, const int64_t *Words) {
      Page &P = getOrCreatePage(Id);
      for (uint64_t W = 0; W < WordsPerPage; ++W)
        P.Words[W].store(Words[W], std::memory_order_relaxed);
    });
  }

  /// Writes every nonzero word back into \p M (coordinator only, after
  /// workers quiesce) so interp::Memory::checksum applies unchanged.
  void copyTo(Memory &M) const {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    for (const auto &[Id, P] : Pages) {
      uint64_t Base = Id << PageShift;
      for (uint64_t W = 0; W < WordsPerPage; ++W) {
        int64_t V = P->Words[W].load(std::memory_order_relaxed);
        // storeWord unconditionally: the sequential run may have written a
        // zero over a nonzero word, and checksum skips zero words anyway.
        M.storeWord(Base + (W << 3), V);
      }
    }
  }

  int64_t loadWord(uint64_t Addr) const {
    assert((Addr & 7) == 0 && "misaligned word access");
    const Page *P = lookupPage(Addr >> PageShift);
    if (!P)
      return 0;
    return P->Words[(Addr & (PageBytes - 1)) >> 3].load(
        std::memory_order_relaxed);
  }

  void storeWord(uint64_t Addr, int64_t Value) {
    assert((Addr & 7) == 0 && "misaligned word access");
    getOrCreatePage(Addr >> PageShift)
        .Words[(Addr & (PageBytes - 1)) >> 3]
        .store(Value, std::memory_order_relaxed);
  }

private:
  struct Page {
    std::atomic<int64_t> Words[WordsPerPage] = {};
  };

  const Page *lookupPage(uint64_t Id) const {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = Pages.find(Id);
    return It == Pages.end() ? nullptr : It->second.get();
  }

  Page &getOrCreatePage(uint64_t Id) {
    {
      std::shared_lock<std::shared_mutex> Lock(Mutex);
      auto It = Pages.find(Id);
      if (It != Pages.end())
        return *It->second;
    }
    std::unique_lock<std::shared_mutex> Lock(Mutex);
    auto &Slot = Pages[Id];
    if (!Slot)
      Slot = std::make_unique<Page>();
    return *Slot;
  }

  mutable std::shared_mutex Mutex;
  std::unordered_map<uint64_t, std::unique_ptr<Page>> Pages;
};

} // namespace rt
} // namespace specsync

#endif // SPECSYNC_RT_SHAREDMEMORY_H
