//===- rt/RtEngine.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/RtEngine.h"

#include "interp/Memory.h"
#include "ir/Remedy.h"
#include "obs/EventLog.h"
#include "rt/EpochEngine.h"
#include "rt/Protocol.h"
#include "rt/SharedMemory.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

using namespace specsync;
using namespace specsync::rt;

namespace {

/// One dispatched epoch attempt. Heap-allocated per dispatch and never
/// reused: a squashed attempt's worker may still be running (a "zombie"
/// polling its abort flag); it writes only into this private object, which
/// the shared_ptr keeps alive until the task exits.
struct Attempt {
  uint64_t Epoch = 0;
  uint64_t Snapshot = 0;
  bool UseForwards = false;
  uint64_t StallMicros = 0; ///< Pre-rolled worker-stall fault (coordinator).
  std::atomic<bool> Aborted{false};
  std::atomic<uint64_t> Steps{0}; ///< Published periodically by the worker.
  // Guarded by the region mutex:
  bool Finished = false;
  std::map<int32_t, MemSignal> LiveSignals; ///< First signal per group.
  std::optional<EpochExec> Result;
};

/// Shared coordination state of one region instance. One mutex serializes
/// every protocol transition; workers touch it only on the rare sync-op
/// paths (wait.mem / signal.mem / check.fwd), never per instruction.
struct RegionCtx {
  std::mutex Mu;
  std::condition_variable Cv;
  CommitWindow &CW;
  std::vector<std::shared_ptr<Attempt>> &Cur;
  std::vector<std::unique_ptr<EpochObs>> &Committed;
};

class AttemptPort : public SyncPort {
public:
  AttemptPort(RegionCtx &Ctx, Attempt &Self) : Ctx(Ctx), Self(Self) {}

  bool waitMem(int32_t G) override {
    std::unique_lock<std::mutex> L(Ctx.Mu);
    for (;;) {
      if (Self.Aborted.load(std::memory_order_relaxed))
        return false;
      // UseForwards implies Snapshot < Epoch, so Epoch >= 1.
      uint64_t P = Self.Epoch - 1;
      if (P < Ctx.CW.head())
        return true; // Producer committed: signal state is final.
      Attempt *Prod = Ctx.Cur[P].get();
      if (Prod && (Prod->Finished || Prod->LiveSignals.count(G)))
        return true;
      Ctx.Cv.wait(L);
    }
  }

  void publishSignal(int32_t G, uint64_t Addr, int64_t Value) override {
    std::lock_guard<std::mutex> L(Ctx.Mu);
    Self.LiveSignals.emplace(G, MemSignal{Addr, Value, false});
    Ctx.Cv.notify_all();
  }

  bool lookupSignal(int32_t G, uint64_t &Addr, int64_t &Value) override {
    std::lock_guard<std::mutex> L(Ctx.Mu);
    uint64_t P = Self.Epoch - 1;
    if (P < Ctx.CW.head()) {
      const EpochObs *O = Ctx.Committed[P].get();
      auto It = O->MemSignals.find(G);
      if (It == O->MemSignals.end())
        return false;
      Addr = It->second.Addr;
      Value = It->second.Value;
      return true;
    }
    Attempt *Prod = Ctx.Cur[P].get();
    if (!Prod)
      return false;
    auto It = Prod->LiveSignals.find(G);
    if (It == Prod->LiveSignals.end())
      return false;
    Addr = It->second.Addr;
    Value = It->second.Value;
    return true;
  }

  bool aborted() const override {
    return Self.Aborted.load(std::memory_order_relaxed);
  }

private:
  RegionCtx &Ctx;
  Attempt &Self;
};

obs::SpecEvent mkEvent(obs::EventKind K, uint64_t Cycle) {
  obs::SpecEvent E;
  E.Kind = static_cast<uint8_t>(K);
  E.Cycle = Cycle;
  return E;
}

} // namespace

RtEngine::RtEngine(const DecodedProgram &DP, const RegionOracle &Oracle,
                   const RtOptions &Opts)
    : DP(DP), Oracle(Oracle), Opts(Opts),
      Pool(Opts.Threads ? Opts.Threads : ThreadPool::defaultJobs()),
      Injector(Opts.Faults) {
  Window = Opts.Window ? Opts.Window : Pool.numThreads();
  // A window wider than the pool could park every worker in a blocked
  // wait with the unblocking attempt still queued; clamp.
  Window = std::max(1u, std::min(Window, Pool.numThreads()));

  // Locate the region function and its header block: any region-control
  // branch whose taken target carries the is-header flag names it.
  for (unsigned FI = 0; FI < DP.numFunctions() && !HaveRegion; ++FI) {
    const DecodedFunction &F = DP.function(FI);
    if (!F.IsRegionFunc)
      continue;
    for (const DecodedInst &I : F.Insts) {
      if (I.Op != Opcode::Br && I.Op != Opcode::CondBr)
        continue;
      if (I.TFlags & 1) {
        RegionFunc = FI;
        HeaderPC = I.T0;
        HaveRegion = true;
        break;
      }
      if ((I.TFlags >> 2) & 1) {
        RegionFunc = FI;
        HeaderPC = I.T1;
        HaveRegion = true;
        break;
      }
    }
  }
}

RtEngine::~RtEngine() = default;

bool RtEngine::executeRegion(unsigned Instance, Memory &Mem, Random &Rng,
                             int64_t *Frame, unsigned NumRegs,
                             uint32_t &ExitPC) {
  if (!HaveRegion || Instance >= Oracle.Regions.size()) {
    ++RegionsSequential;
    return false;
  }
  const RegionOracleRec &Rec = Oracle.Regions[Instance];
  const uint64_t N = Rec.Epochs.size();
  if (Rec.ExitViaRet || N == 0) {
    ++RegionsSequential;
    return false;
  }
  // Scalar-state sanity: the recording run and this run must agree on the
  // region-entry frame and RNG state (they can diverge only if execution
  // is nondeterministic outside the oracle's model — fall back rather than
  // mis-speculate from a wrong base).
  const EpochStart &E0 = Rec.Epochs[0];
  if (E0.Frame.size() != NumRegs ||
      !std::equal(E0.Frame.begin(), E0.Frame.end(), Frame) ||
      E0.RngState != Rng.state()) {
    ++RegionsSequential;
    return false;
  }

  obs::EventLog &Ev = obs::EventLog::global();
  Ev.beginRegion();
  {
    obs::SpecEvent E = mkEvent(obs::EventKind::RegionBegin, LC++);
    E.Aux = N;
    Ev.push(E);
  }

  SharedMemory Shared;
  Shared.copyFrom(Mem);
  EpochEnv Env{DP,        RegionFunc, HeaderPC, Shared,
               Opts.LineShift, Opts.Pads,  Opts.Native};

  CommitWindow CW(N, Window);
  std::vector<std::shared_ptr<Attempt>> Cur(N);
  std::vector<std::unique_ptr<EpochObs>> Committed(N);
  RegionCtx Ctx{{}, {}, CW, Cur, Committed};

  uint64_t RegionSquashes = 0;
  std::map<uint64_t, unsigned> HeadRetries;    ///< Cascades headed at epoch.
  std::map<uint64_t, unsigned> InjectedAborts; ///< Per-epoch fault cap.

  // Dispatches a fresh attempt for epoch E (protocol lock held). Zombie
  // attempts from earlier dispatches keep their own objects.
  auto dispatch = [&](uint64_t E, bool Restart) {
    auto A = std::make_shared<Attempt>();
    A->Epoch = E;
    A->Snapshot = CW.snapshot(E);
    A->UseForwards = CW.useForwards(E);
    if (Injector.rtEnabled() && Injector.stallWorker()) {
      A->StallMicros = Opts.Faults.RtStallMicros;
      ++RawSim.Faults.WorkerStalls;
    }
    if (Restart) {
      obs::SpecEvent S = mkEvent(obs::EventKind::EpochRestart, LC++);
      S.Epoch = E;
      Ev.push(S);
    }
    {
      obs::SpecEvent S = mkEvent(obs::EventKind::EpochStart, LC++);
      S.Epoch = E;
      Ev.push(S);
    }
    Cur[E] = A;
    const EpochStart *Entry = &Rec.Epochs[E];
    uint64_t StepCap = Entry->SeqSteps * Opts.StepCapMultiplier + 10000;
    Pool.submit([A, &Ctx, &Env, Entry, StepCap] {
      if (A->StallMicros)
        std::this_thread::sleep_for(
            std::chrono::microseconds(A->StallMicros));
      AttemptPort Port(Ctx, *A);
      EpochExec R = runSpeculativeEpoch(Env, *Entry, StepCap, A->UseForwards,
                                        Port, A->Steps);
      std::lock_guard<std::mutex> L(Ctx.Mu);
      A->Result.emplace(std::move(R));
      A->Finished = true;
      Ctx.Cv.notify_all();
    });
  };

  // Cascade squash of [head, dispatched): abort every current attempt,
  // charge its wasted steps (the value read here is the one charged
  // everywhere — ledger Aux, RawSim fail slots, WastedSteps — so the
  // racy-but-published counter stays internally consistent), reassign
  // snapshots to the head, and re-dispatch. The cause event was already
  // pushed by the caller, keeping the stream's causal order.
  auto cascade = [&] {
    uint64_t From, To;
    {
      std::lock_guard<std::mutex> L(Ctx.Mu);
      From = CW.head();
      To = CW.dispatched();
      for (uint64_t E = From; E < To; ++E) {
        Attempt *A = Cur[E].get();
        A->Aborted.store(true, std::memory_order_relaxed);
        uint64_t W = A->Steps.load(std::memory_order_relaxed);
        WastedSteps += W;
        RawSim.Slots.Fail += W;
        RawSim.Slots.Total += W;
        obs::SpecEvent S = mkEvent(obs::EventKind::EpochSquash, LC++);
        S.Epoch = E;
        S.Aux = W;
        Ev.push(S);
      }
      Counts.EpochsSquashed += CW.squashFromHead();
      RegionSquashes += To - From;
      Ctx.Cv.notify_all();
      for (uint64_t E = From; E < To; ++E)
        dispatch(E, /*Restart=*/true);
    }
    unsigned R = HeadRetries[From]++;
    if (Injector.rtEnabled()) {
      // Bounded exponential backoff between fault-driven retries so an
      // injected livelock cannot spin the coordinator hot.
      ++BackoffRetries;
      ++RawSim.BackoffRetries;
      uint64_t Us = uint64_t(Opts.BackoffBaseMicros)
                    << std::min(R, 6u);
      std::this_thread::sleep_for(std::chrono::microseconds(Us));
    }
  };

  // Watchdog demotion: abort everything, quiesce the pool, and hand the
  // instance back to the interpreter's sequential path. Mem was never
  // touched (commits go to Shared; copy-back happens only on success), so
  // the fallback is bit-identical to a sequential run by construction.
  auto demote = [&] {
    {
      std::lock_guard<std::mutex> L(Ctx.Mu);
      for (uint64_t E = CW.head(); E < CW.dispatched(); ++E)
        if (Cur[E])
          Cur[E]->Aborted.store(true, std::memory_order_relaxed);
      Ctx.Cv.notify_all();
    }
    Pool.waitIdle();
    ++WatchdogTrips;
    ++RawSim.WatchdogTrips;
    ++RegionsDemoted;
    obs::SpecEvent W = mkEvent(obs::EventKind::WatchdogWake, LC++);
    W.Epoch = CW.head();
    Ev.push(W);
    return false;
  };

  {
    std::lock_guard<std::mutex> L(Ctx.Mu);
    for (uint64_t E = 0; E < CW.dispatched(); ++E)
      dispatch(E, /*Restart=*/false);
  }

  while (!CW.done()) {
    const uint64_t J = CW.head();
    std::shared_ptr<Attempt> A = Cur[J];
    {
      std::unique_lock<std::mutex> L(Ctx.Mu);
      if (!Ctx.Cv.wait_for(L, std::chrono::milliseconds(Opts.NoProgressMillis),
                           [&] { return A->Finished; }))
        return demote(); // Livelock: nothing committed for the whole budget.
    }
    if (Opts.RegionSquashBudget && RegionSquashes > Opts.RegionSquashBudget)
      return demote();

    // Injected spurious abort (pre-validation). Capped per epoch by the
    // retry limit — a "protected" epoch takes no more injected aborts, so
    // even a 100% rate terminates.
    if (Injector.rtEnabled() && InjectedAborts[J] < Opts.EpochRetryLimit &&
        Injector.spuriousAbort()) {
      ++InjectedAborts[J];
      ++RawSim.Faults.SpuriousViolations;
      ++RawSim.Faults.SpuriousAborts;
      obs::SpecEvent S = mkEvent(obs::EventKind::SpuriousViolation, LC++);
      S.Epoch = J;
      Ev.push(S);
      cascade();
      continue;
    }

    EpochExec &Res = *A->Result;
    assert(Res.Kind != EpochExitKind::Aborted &&
           "head attempt cannot be a zombie");
    Verdict V = validateAtHead(
        Res.Obs, J, A->Snapshot, A->UseForwards,
        [&](uint64_t E) -> const EpochObs & { return *Committed[E]; },
        [&](int32_t, uint64_t Addr) { return Shared.loadWord(Addr); });

    if (!V.passed()) {
      if (V.K == Verdict::RawConflict) {
        ++Counts.Violations;
        ++RawSim.Violations;
        obs::SpecEvent S = mkEvent(obs::EventKind::Violation, LC++);
        S.Epoch = V.WriterEpoch;
        S.OtherEpoch = J;
        if (V.Line != ~0ull) {
          S.Addr = V.Line << Opts.LineShift;
          S.Aux = V.Line;
          if (const auto *WE = Committed[V.WriterEpoch]->Writes.find(V.Line)) {
            S.StaticId = WE->StaticId;
            S.Context = WE->Context;
          }
          if (const auto *RE = Res.Obs.Reads.find(V.Line)) {
            S.OtherStaticId = RE->StaticId;
            S.OtherContext = RE->Context;
            S.SyncId = RE->SyncId;
          }
        }
        Ev.push(S);
      } else {
        ++Counts.SabViolations;
        ++RawSim.SabViolations;
        obs::SpecEvent S = mkEvent(obs::EventKind::SabViolation, LC++);
        S.Epoch = J - 1; // The storing (producer) epoch.
        S.OtherEpoch = J;
        S.SyncId = V.Group;
        auto It = Committed[J - 1]->MemSignals.find(V.Group);
        if (It != Committed[J - 1]->MemSignals.end())
          S.Addr = It->second.Addr;
        Ev.push(S);
      }
      cascade();
      continue;
    }

    // Commit. The injected commit delay models a slow committer; it only
    // stretches wall time, never protocol decisions.
    if (Injector.rtEnabled() && Injector.delayCommit()) {
      ++RawSim.Faults.DelayedCommits;
      std::this_thread::sleep_for(
          std::chrono::microseconds(Opts.Faults.RtDelayedCommitMicros));
    }
    for (const auto &[Addr, Val] : Res.WriteBuf)
      Shared.storeWord(Addr, Val);
    // Fold reduction-expansion partials in commit order: each epoch's
    // accumulated value combines into the shared location exactly where
    // the sequential load-modify-store chain would have left it.
    for (const auto &[Addr, Acc] : Res.ReduceAcc) {
      auto K = static_cast<ReduceOpKind>(Acc.first);
      Shared.storeWord(Addr,
                       applyReduceOp(K, Shared.loadWord(Addr), Acc.second));
    }

    StallCounts SC =
        countStalls(Res.Obs, J > 0 ? Committed[J - 1].get() : nullptr);
    Counts.SyncStallsScalar += SC.Scalar;
    Counts.SyncStallsMem += SC.Mem;
    RawSim.Slots.SyncScalar += SC.Scalar;
    RawSim.Slots.SyncMem += SC.Mem;
    RawSim.Slots.Busy += Res.Obs.Steps;
    RawSim.Slots.Total += Res.Obs.Steps + SC.Scalar + SC.Mem;
    for (uint64_t K = 0; K < SC.Scalar + SC.Mem; ++K) {
      obs::SpecEvent S = mkEvent(obs::EventKind::WaitStall, LC++);
      S.Epoch = J;
      S.OtherEpoch = J - 1;
      S.Aux = 1; // Unit stall: the rt backend has no cycle model.
      S.Flags = obs::event_flags::kStallCommit;
      if (K >= SC.Scalar)
        S.Flags |= obs::event_flags::kStallMem;
      Ev.push(S);
    }
    ++Counts.EpochsCommitted;
    ++RawSim.EpochsCommitted;
    {
      obs::SpecEvent S = mkEvent(obs::EventKind::EpochCommit, LC);
      S.Epoch = J;
      S.Addr = LC; // Finish == start == end: logical clock, no cycle model.
      S.Aux = LC;
      ++LC;
      Ev.push(S);
    }
    Committed[J] = std::make_unique<EpochObs>(std::move(Res.Obs));
    {
      std::lock_guard<std::mutex> L(Ctx.Mu);
      uint64_t NewE = CW.commitHead();
      Ctx.Cv.notify_all();
      if (NewE != ~0ull)
        dispatch(NewE, /*Restart=*/false);
    }
  }

  // Quiesce zombies before Shared (captured by reference in worker tasks)
  // leaves scope, then install the region-exit state.
  Pool.waitIdle();
  Ev.push(mkEvent(obs::EventKind::RegionEnd, LC++));
  Shared.copyTo(Mem);
  assert(Rec.ExitFrame.size() == NumRegs && "oracle frame geometry mismatch");
  std::copy(Rec.ExitFrame.begin(), Rec.ExitFrame.end(), Frame);
  Rng.setState(Rec.ExitRngState);
  ExitPC = Rec.ExitPC;
  ++Counts.Regions;
  ++RegionsParallel;
  RawSim.Cycles = LC;
  return true;
}

void RtEngine::fill(RtRunResult &R) const {
  R.Counts = Counts;
  R.WastedSteps = WastedSteps;
  R.RegionsParallel = RegionsParallel;
  R.RegionsSequential = RegionsSequential;
  R.RegionsDemoted = RegionsDemoted;
  R.WatchdogTrips = WatchdogTrips;
  R.BackoffRetries = BackoffRetries;
  const FaultCounts &FC = Injector.counts();
  R.SpuriousAborts = FC.SpuriousAborts;
  R.DelayedCommits = FC.DelayedCommits;
  R.WorkerStalls = FC.WorkerStalls;
  R.Threads = Pool.numThreads();
  R.Window = Window;
}

//===----------------------------------------------------------------------===//
// Flag parsing
//===----------------------------------------------------------------------===//

void rt::parseRtArgs(int argc, char **argv, RtOptions &O) {
  auto valueOf = [](const char *Arg, const char *Prefix) -> const char * {
    size_t L = std::strlen(Prefix);
    return std::strncmp(Arg, Prefix, L) == 0 ? Arg + L : nullptr;
  };
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (const char *V = valueOf(A, "--rt-threads="))
      O.Threads = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = valueOf(A, "--rt-window="))
      O.Window = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = valueOf(A, "--rt-squash-budget="))
      O.RegionSquashBudget = std::strtoull(V, nullptr, 10);
    else if (const char *V = valueOf(A, "--rt-no-progress-ms="))
      O.NoProgressMillis = std::strtoull(V, nullptr, 10);
    else if (const char *V = valueOf(A, "--rt-step-cap-mult="))
      O.StepCapMultiplier = std::strtoull(V, nullptr, 10);
  }
}
