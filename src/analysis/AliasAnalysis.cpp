//===- analysis/AliasAnalysis.cpp -------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace specsync;
using namespace specsync::analysis;

//===----------------------------------------------------------------------===//
// Lattice elements
//===----------------------------------------------------------------------===//

bool OffsetSet::join(const OffsetSet &RHS) {
  if (Unknown)
    return false;
  if (RHS.Unknown) {
    widen();
    return true;
  }
  bool Changed = false;
  for (int64_t Off : RHS.Offsets)
    Changed |= insert(Off);
  return Changed;
}

bool OffsetSet::insert(int64_t Off) {
  if (Unknown)
    return false;
  if (!Offsets.insert(Off).second)
    return false;
  if (Offsets.size() > MaxEnumerated)
    widen();
  return true;
}

bool ValueInfo::join(const ValueInfo &RHS) {
  if (Top)
    return false;
  if (RHS.Top) {
    setTop();
    return true;
  }
  bool Changed = false;
  if (RHS.ScalarTop && !ScalarTop) {
    ScalarTop = true;
    ScalarConsts.clear();
    Changed = true;
  }
  if (!ScalarTop) {
    for (int64_t C : RHS.ScalarConsts) {
      size_t Before = ScalarConsts.size();
      addScalarConst(C);
      Changed |= ScalarTop || ScalarConsts.size() != Before;
      if (ScalarTop)
        break;
    }
  }
  for (const auto &KV : RHS.Ptrs) {
    auto It = Ptrs.find(KV.first);
    if (It == Ptrs.end()) {
      Ptrs.emplace(KV.first, KV.second);
      Changed = true;
    } else {
      Changed |= It->second.join(KV.second);
    }
  }
  return Changed;
}

void ValueInfo::addScalarConst(int64_t V) {
  if (Top || ScalarTop)
    return;
  ScalarConsts.insert(V);
  if (ScalarConsts.size() > MaxScalarConsts) {
    ScalarTop = true;
    ScalarConsts.clear();
  }
}

const char *analysis::aliasResultName(AliasResult R) {
  switch (R) {
  case AliasResult::NoAlias:
    return "no-alias";
  case AliasResult::MayAlias:
    return "may-alias";
  case AliasResult::MustAlias:
    return "must-alias";
  }
  return "<invalid>";
}

//===----------------------------------------------------------------------===//
// AddrInfo
//===----------------------------------------------------------------------===//

bool AddrInfo::isSingleton() const {
  if (Unknown)
    return false;
  size_t NumTargets = RawAddrs.size();
  for (const auto &KV : ByGlobal) {
    if (KV.second.Unknown)
      return false;
    NumTargets += KV.second.Offsets.size();
  }
  return NumTargets == 1;
}

std::string AddrInfo::render(const Program &P) const {
  if (Unknown)
    return "?";
  std::vector<std::string> Parts;
  for (const auto &KV : ByGlobal) {
    const std::string &G = KV.first < P.globals().size()
                               ? P.globals()[KV.first].Name
                               : "<g?>";
    if (KV.second.Unknown) {
      Parts.push_back(G + "[*]");
      continue;
    }
    for (int64_t Off : KV.second.Offsets) {
      std::ostringstream OS;
      OS << G << "[+" << Off << "]";
      Parts.push_back(OS.str());
    }
  }
  for (int64_t A : RawAddrs) {
    std::ostringstream OS;
    OS << "0x" << std::hex << A;
    Parts.push_back(OS.str());
  }
  if (Parts.empty())
    return "<none>";
  if (Parts.size() == 1)
    return Parts.front();
  std::string Out = "{";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += ",";
    Out += Parts[I];
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// AliasAnalysis
//===----------------------------------------------------------------------===//

AliasAnalysis::AliasAnalysis(const Program &P) : Prog(P) {
  Regs.resize(P.getNumFunctions());
  Returns.resize(P.getNumFunctions());
  for (unsigned F = 0; F < P.getNumFunctions(); ++F)
    Regs[F].resize(P.getFunction(F).getNumRegs());
  Contents.resize(P.globals().size());
}

const ValueInfo &AliasAnalysis::valueOf(unsigned Func, unsigned Reg) const {
  assert(Func < Regs.size() && Reg < Regs[Func].size() &&
         "register out of range");
  return Regs[Func][Reg];
}

const ValueInfo &AliasAnalysis::contentsOf(unsigned G) const {
  assert(G < Contents.size() && "global index out of range");
  return Contents[G];
}

ValueInfo AliasAnalysis::classifyConstant(int64_t C) const {
  ValueInfo V;
  const auto &Globals = Prog.globals();
  for (unsigned G = 0; G < Globals.size(); ++G) {
    int64_t Base = static_cast<int64_t>(Globals[G].BaseAddr);
    int64_t Size = static_cast<int64_t>(Globals[G].SizeBytes);
    if (C >= Base && C < Base + Size) {
      V.Ptrs[G].insert(C - Base);
      return V;
    }
  }
  V.addScalarConst(C);
  return V;
}

ValueInfo AliasAnalysis::evalOperand(unsigned Func, const Operand &Op) const {
  if (Op.isReg())
    return Regs[Func][Op.getReg()];
  return classifyConstant(Op.getImm());
}

AddrInfo AliasAnalysis::toAddr(const ValueInfo &V) const {
  AddrInfo A;
  if (V.Top || V.ScalarTop) {
    A.Unknown = true;
    return A;
  }
  A.ByGlobal = V.Ptrs;
  // Scalar constants used as addresses: arithmetic can fold a value into a
  // global's range (e.g. base computed by shifts), so reclassify each one.
  for (int64_t C : V.ScalarConsts) {
    ValueInfo CV = classifyConstant(C);
    if (CV.Ptrs.empty()) {
      A.RawAddrs.insert(C);
    } else {
      for (const auto &KV : CV.Ptrs) {
        auto It = A.ByGlobal.find(KV.first);
        if (It == A.ByGlobal.end())
          A.ByGlobal.emplace(KV.first, KV.second);
        else
          It->second.join(KV.second);
      }
    }
  }
  return A;
}

AddrInfo AliasAnalysis::addressOf(unsigned Func, const Instruction &I) const {
  assert((I.getOpcode() == Opcode::Load || I.getOpcode() == Opcode::Store) &&
         "addressOf expects a memory instruction");
  return toAddr(evalOperand(Func, I.getOperand(0)));
}

ValueInfo AliasAnalysis::loadFrom(const AddrInfo &Addr) const {
  // Memory starts zeroed, so every load may observe 0.
  ValueInfo V;
  V.addScalarConst(0);
  if (Addr.Unknown) {
    for (const ValueInfo &C : Contents)
      V.join(C);
    V.join(OutOfRangeContents);
    return V;
  }
  for (const auto &KV : Addr.ByGlobal)
    V.join(Contents[KV.first]);
  if (!Addr.RawAddrs.empty())
    V.join(OutOfRangeContents);
  return V;
}

bool AliasAnalysis::storeTo(const AddrInfo &Addr, const ValueInfo &Val) {
  bool Changed = false;
  if (Addr.Unknown) {
    for (ValueInfo &C : Contents)
      Changed |= C.join(Val);
    Changed |= OutOfRangeContents.join(Val);
    return Changed;
  }
  for (const auto &KV : Addr.ByGlobal)
    Changed |= Contents[KV.first].join(Val);
  if (!Addr.RawAddrs.empty())
    Changed |= OutOfRangeContents.join(Val);
  return Changed;
}

namespace {

int64_t foldOne(Opcode Op, int64_t A, int64_t B) {
  uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(UA + UB);
  case Opcode::Sub:
    return static_cast<int64_t>(UA - UB);
  case Opcode::Mul:
    return static_cast<int64_t>(UA * UB);
  case Opcode::Div:
    return B == 0 ? 0 : A / B;
  case Opcode::Mod:
    return B == 0 ? 0 : A % B;
  case Opcode::And:
    return static_cast<int64_t>(UA & UB);
  case Opcode::Or:
    return static_cast<int64_t>(UA | UB);
  case Opcode::Xor:
    return static_cast<int64_t>(UA ^ UB);
  case Opcode::Shl:
    return static_cast<int64_t>(UA << (UB & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(UA >> (UB & 63));
  case Opcode::CmpEQ:
    return A == B;
  case Opcode::CmpNE:
    return A != B;
  case Opcode::CmpLT:
    return A < B;
  case Opcode::CmpLE:
    return A <= B;
  case Opcode::CmpGT:
    return A > B;
  case Opcode::CmpGE:
    return A >= B;
  default:
    assert(false && "not a foldable binary opcode");
    return 0;
  }
}

} // namespace

bool AliasAnalysis::transfer(unsigned Func, const Instruction &I) {
  std::vector<ValueInfo> &R = Regs[Func];
  auto Eval = [&](unsigned OpIdx) {
    return evalOperand(Func, I.getOperand(OpIdx));
  };

  switch (I.getOpcode()) {
  case Opcode::Const:
    return R[I.getDest()].join(classifyConstant(I.getOperand(0).getImm()));

  case Opcode::Move:
    return R[I.getDest()].join(Eval(0));

  case Opcode::Add:
  case Opcode::Sub: {
    ValueInfo L = Eval(0), Rhs = Eval(1);
    ValueInfo Out;
    if (L.Top || Rhs.Top) {
      Out.setTop();
      return R[I.getDest()].join(Out);
    }
    bool Sub = I.getOpcode() == Opcode::Sub;
    // pointer ± scalar: shift the offsets (in-bounds assumption: the result
    // still addresses the same global).
    auto Shift = [&](const ValueInfo &Ptr, const ValueInfo &Idx,
                     bool Negate) {
      for (const auto &KV : Ptr.Ptrs) {
        OffsetSet &Dst = Out.Ptrs[KV.first];
        if (KV.second.Unknown || Idx.ScalarTop) {
          Dst.widen();
          continue;
        }
        for (int64_t Off : KV.second.Offsets)
          for (int64_t C : Idx.ScalarConsts)
            Dst.insert(Negate ? Off - C : Off + C);
        // pointer with no scalar component on the other side contributes
        // nothing (the operand was a pure pointer; handled below as ptr-ptr).
      }
    };
    bool LPtr = !L.Ptrs.empty(), RPtr = !Rhs.Ptrs.empty();
    if (LPtr && Rhs.mayBeScalar())
      Shift(L, Rhs, Sub);
    if (RPtr && L.mayBeScalar() && !Sub)
      Shift(Rhs, L, false);
    if (RPtr && Sub) {
      // scalar - ptr or ptr - ptr: a scrambled address or a distance.
      // Soundness demands Top (the result could be re-used as an address);
      // no workload does this, so precision loss is irrelevant.
      Out.setTop();
    }
    if (LPtr && RPtr && !Sub)
      Out.setTop(); // ptr + ptr: no useful structure.
    // scalar ± scalar.
    if (L.mayBeScalar() && Rhs.mayBeScalar() && !Out.Top) {
      if (L.ScalarTop || Rhs.ScalarTop) {
        Out.ScalarTop = true;
        Out.ScalarConsts.clear();
      } else {
        for (int64_t A : L.ScalarConsts)
          for (int64_t B : Rhs.ScalarConsts)
            Out.join(classifyConstant(foldOne(I.getOpcode(), A, B)));
      }
    }
    if (Out.isBottom() && (!L.isBottom() || !Rhs.isBottom()))
      Out.ScalarTop = true; // degenerate mix; stay sound.
    return R[I.getDest()].join(Out);
  }

  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Mod:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE: {
    ValueInfo L = Eval(0), Rhs = Eval(1);
    ValueInfo Out;
    if (I.getOpcode() >= Opcode::CmpEQ && I.getOpcode() <= Opcode::CmpGE) {
      // Comparisons always yield 0/1 regardless of operand kinds.
      Out.addScalarConst(0);
      Out.addScalarConst(1);
      return R[I.getDest()].join(Out);
    }
    if (L.mayBePointer() || Rhs.mayBePointer()) {
      // Non-additive math on a possible pointer can manufacture any
      // address.
      Out.setTop();
      return R[I.getDest()].join(Out);
    }
    if (!L.ScalarTop && !Rhs.ScalarTop) {
      for (int64_t A : L.ScalarConsts)
        for (int64_t B : Rhs.ScalarConsts)
          Out.join(classifyConstant(foldOne(I.getOpcode(), A, B)));
      if (!L.ScalarConsts.empty() && !Rhs.ScalarConsts.empty())
        return R[I.getDest()].join(Out);
    }
    Out.ScalarTop = true;
    Out.ScalarConsts.clear();
    return R[I.getDest()].join(Out);
  }

  case Opcode::Select: {
    ValueInfo Out = Eval(1);
    Out.join(Eval(2));
    return R[I.getDest()].join(Out);
  }

  case Opcode::Rand: {
    ValueInfo Out;
    Out.ScalarTop = true;
    return R[I.getDest()].join(Out);
  }

  case Opcode::Load:
    return R[I.getDest()].join(loadFrom(toAddr(Eval(0))));

  case Opcode::Store:
    return storeTo(toAddr(Eval(0)), Eval(1));

  case Opcode::Reduce: {
    // mem[op0] = mem[op0] <op> op1: reads and rewrites the location. The
    // result is always a scalar (reduction chains never combine pointers),
    // so merging "unknown scalar" into the contents is sound and cheap.
    ValueInfo V;
    V.ScalarTop = true;
    return storeTo(toAddr(Eval(0)), V);
  }

  case Opcode::Call: {
    unsigned Callee = I.getCallee();
    bool Changed = false;
    const Function &CF = Prog.getFunction(Callee);
    for (unsigned A = 0; A < I.getNumOperands() && A < CF.getNumParams(); ++A)
      Changed |= Regs[Callee][A].join(Eval(A));
    if (I.hasDest())
      Changed |= R[I.getDest()].join(Returns[Callee]);
    return Changed;
  }

  case Opcode::Ret: {
    ValueInfo Out;
    if (I.getNumOperands() > 0)
      Out = Eval(0);
    else
      Out.addScalarConst(0);
    return Returns[Func].join(Out);
  }

  // Control flow and TLS synchronization neither define registers nor write
  // program-visible memory (SignalMem forwards a value the Store already
  // wrote; WaitScalar is timing-only).
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::WaitScalar:
  case Opcode::SignalScalar:
  case Opcode::WaitMem:
  case Opcode::CheckFwd:
  case Opcode::SelectFwd:
  case Opcode::SignalMem:
    return false;
  }
  return false;
}

void AliasAnalysis::run() {
  if (Ran)
    return;
  Ran = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    for (unsigned F = 0; F < Prog.getNumFunctions(); ++F) {
      const Function &Fn = Prog.getFunction(F);
      for (unsigned B = 0; B < Fn.getNumBlocks(); ++B)
        for (const Instruction &I : Fn.getBlock(B).instructions())
          Changed |= transfer(F, I);
    }
    // The lattice is finite-height (capped sets with widening), so this
    // terminates; the guard is against a lattice bug, not real programs.
    assert(Iterations < 10000 && "alias analysis failed to converge");
  }
}

AliasResult AliasAnalysis::alias(const AddrInfo &A, const AddrInfo &B) const {
  if (A.Unknown || B.Unknown)
    return AliasResult::MayAlias;

  // Expand each side to absolute byte intervals [begin, end).
  auto Intervals = [&](const AddrInfo &X) {
    std::vector<std::pair<int64_t, int64_t>> Out;
    for (const auto &KV : X.ByGlobal) {
      if (KV.first >= Prog.globals().size())
        continue;
      int64_t Base = static_cast<int64_t>(Prog.globals()[KV.first].BaseAddr);
      int64_t Size = static_cast<int64_t>(Prog.globals()[KV.first].SizeBytes);
      if (KV.second.Unknown) {
        Out.emplace_back(Base, Base + Size);
      } else {
        for (int64_t Off : KV.second.Offsets)
          Out.emplace_back(Base + Off, Base + Off + Program::WordBytes);
      }
    }
    for (int64_t Raw : X.RawAddrs)
      Out.emplace_back(Raw, Raw + Program::WordBytes);
    return Out;
  };
  std::vector<std::pair<int64_t, int64_t>> IA = Intervals(A), IB = Intervals(B);
  if (IA.empty() || IB.empty())
    return AliasResult::NoAlias; // A dead address expression cannot alias.

  bool Overlap = false;
  for (const auto &PA : IA) {
    for (const auto &PB : IB) {
      if (PA.first < PB.second && PB.first < PA.second) {
        Overlap = true;
        break;
      }
    }
    if (Overlap)
      break;
  }
  if (!Overlap)
    return AliasResult::NoAlias;
  if (A.isSingleton() && B.isSingleton() && IA.front() == IB.front())
    return AliasResult::MustAlias;
  return AliasResult::MayAlias;
}

std::string AliasAnalysis::renderValue(const ValueInfo &V) const {
  if (V.Top)
    return "T";
  if (V.isBottom())
    return "_";
  std::ostringstream OS;
  bool First = true;
  auto Sep = [&]() {
    if (!First)
      OS << " | ";
    First = false;
  };
  if (V.ScalarTop) {
    Sep();
    OS << "scalar";
  } else if (!V.ScalarConsts.empty()) {
    Sep();
    OS << "{";
    bool FirstC = true;
    for (int64_t C : V.ScalarConsts) {
      if (!FirstC)
        OS << ",";
      FirstC = false;
      OS << C;
    }
    OS << "}";
  }
  if (!V.Ptrs.empty()) {
    Sep();
    AddrInfo A;
    A.ByGlobal = V.Ptrs;
    OS << "&" << A.render(Prog);
  }
  return OS.str();
}
