//===- analysis/DepOracle.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepOracle.h"

#include "analysis/Diag.h"
#include "obs/Json.h"

#include <algorithm>
#include <sstream>

using namespace specsync;
using namespace specsync::analysis;

const char *analysis::depVerdictName(DepVerdict V) {
  switch (V) {
  case DepVerdict::MustSync:
    return "must-sync";
  case DepVerdict::Speculate:
    return "speculate";
  case DepVerdict::Impossible:
    return "impossible";
  }
  return "<invalid>";
}

std::vector<DepPairStat> DepOracleResult::forcedPairs() const {
  std::vector<DepPairStat> Out;
  for (const OracleEntry &E : Entries) {
    if (!E.Forced)
      continue;
    DepPairStat P;
    P.Load = E.Load;
    P.Store = E.Store;
    // Profile-known counts carry over so group TotalDepCount attribution
    // stays meaningful; statically discovered pairs contribute 0.
    P.Count = 0;
    P.EpochsWithDep = 0;
    if (E.Distance1)
      P.Distance1Count = 1;
    Out.push_back(P);
  }
  return Out;
}

void DepOracleResult::writeJson(obs::JsonWriter &W) const {
  W.beginObject();
  W.keyValue("threshold_percent", ThresholdPercent);
  if (ProfileSampled) {
    // Absent for exact profiles so their reports stay byte-identical.
    W.key("profile_sampling");
    W.beginObject();
    W.keyValue("sample_every", ProfileSampleEvery);
    W.keyValue("sampled_epochs", ProfileSampledEpochs);
    W.keyValue("total_epochs", ProfileTotalEpochs);
    W.endObject();
  }
  W.keyValue("complete", Complete);
  W.keyValue("num_refs", static_cast<uint64_t>(NumRefs));
  W.key("counters");
  W.beginObject();
  W.keyValue("static_confirmed", static_cast<uint64_t>(StaticConfirmed));
  W.keyValue("static_pruned", static_cast<uint64_t>(StaticPruned));
  W.keyValue("static_forced", static_cast<uint64_t>(StaticForced));
  W.keyValue("speculated", static_cast<uint64_t>(Speculated));
  W.endObject();
  W.key("verdicts");
  W.beginArray();
  for (const OracleEntry &E : Entries) {
    W.beginObject();
    W.keyValue("load_id", static_cast<uint64_t>(E.Load.InstId));
    W.keyValue("load_ctx", static_cast<uint64_t>(E.Load.Context));
    W.keyValue("store_id", static_cast<uint64_t>(E.Store.InstId));
    W.keyValue("store_ctx", static_cast<uint64_t>(E.Store.Context));
    W.keyValue("verdict", depVerdictName(E.Verdict));
    W.keyValue("static", staticDepKindName(E.Static));
    W.keyValue("in_profile", E.InProfile);
    W.keyValue("freq_percent", E.FreqPercent);
    if (ProfileSampled && E.InProfile) {
      W.keyValue("freq_low_percent", E.FreqLowPercent);
      W.keyValue("freq_high_percent", E.FreqHighPercent);
    }
    W.keyValue("forced", E.Forced);
    W.keyValue("pruned", E.Pruned);
    if (E.Distance1)
      W.keyValue("distance1", true);
    W.keyValue("reason", E.Reason);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

DepOracleResult DepOracle::fuse(const DepProfile &Profile,
                                double ThresholdPercent,
                                DiagEngine *DE) const {
  DepOracleResult R;
  R.ThresholdPercent = ThresholdPercent;
  R.ProfileSampled = Profile.isSampled();
  R.ProfileSampleEvery = Profile.SampleEvery;
  R.ProfileSampledEpochs = Profile.SampledEpochs;
  R.ProfileTotalEpochs = Profile.TotalEpochs;
  R.Complete = Tester.isComplete();
  R.NumRefs = static_cast<unsigned>(Tester.refs().size());

  auto describeRef = [](const RefName &N) {
    std::ostringstream OS;
    OS << "#" << N.InstId << "@ctx" << N.Context;
    return OS.str();
  };

  // Pass 1: every profile pair gets a row.
  for (const auto &KV : Profile.Pairs) {
    const DepPairStat &P = KV.second;
    OracleEntry E;
    E.Load = P.Load;
    E.Store = P.Store;
    E.InProfile = true;
    E.FreqPercent = Profile.pairFrequencyPercent(P);
    E.FreqLowPercent = Profile.pairFrequencyLowerPercent(P);
    E.FreqHighPercent = Profile.pairFrequencyUpperPercent(P);
    // Sampled profiles must clear the threshold at the lower confidence
    // bound; for exact profiles the bound is the point estimate.
    bool Frequent = E.FreqLowPercent > ThresholdPercent;

    const MemRef *LR = Tester.findRef(P.Load);
    const MemRef *SR = Tester.findRef(P.Store);
    if (!LR || !SR) {
      if (R.Complete) {
        // The region provably contains no such reference: the profile is
        // stale or corrupted. Prune — this also protects MemSync, whose
        // clone-and-mark step hard-asserts on unknown profile names.
        E.Verdict = DepVerdict::Impossible;
        E.Pruned = true;
        E.Static = StaticDepKind::NoDep;
        E.Reason = "ref-not-in-region";
      } else {
        E.Static = StaticDepKind::May;
        E.Verdict = Frequent ? DepVerdict::MustSync : DepVerdict::Speculate;
        E.Reason = Frequent ? "frequent-unverifiable" : "below-threshold";
      }
    } else {
      StaticDepResult SD = Tester.classify(*SR, *LR);
      E.Static = SD.Kind;
      E.Distance1 = SD.Distance1;
      switch (SD.Kind) {
      case StaticDepKind::NoDep:
        E.Verdict = DepVerdict::Impossible;
        E.Pruned = true;
        E.Reason = "statically-refuted";
        break;
      case StaticDepKind::Must:
      case StaticDepKind::MustAddr:
        E.Verdict = DepVerdict::MustSync;
        if (!Frequent) {
          E.Forced = true;
          E.Reason = "forced-under-threshold";
        } else {
          E.Reason = "confirmed";
        }
        break;
      case StaticDepKind::May:
        E.Verdict = Frequent ? DepVerdict::MustSync : DepVerdict::Speculate;
        E.Reason = Frequent ? "confirmed" : "below-threshold";
        break;
      }
    }

    if (E.Pruned) {
      R.PrunedPairs.insert({E.Load, E.Store});
      if (DE)
        DE->warning("dep-oracle", "pruned-profile-entry",
                    "profile dependence " + describeRef(E.Store) + " -> " +
                        describeRef(E.Load) +
                        " is statically impossible (" + E.Reason +
                        "); pruned from synchronization");
    }
    R.Entries.push_back(std::move(E));
  }

  // Pass 2: statically proven same-address loop-carried pairs the profile
  // does not already cover get forced rows.
  const std::vector<MemRef> &Refs = Tester.refs();
  for (const MemRef &S : Refs) {
    if (S.IsLoad)
      continue;
    for (const MemRef &L : Refs) {
      if (!L.IsLoad)
        continue;
      if (Profile.Pairs.count({L.Name, S.Name}))
        continue; // Row already emitted in pass 1.
      StaticDepResult SD = Tester.classify(S, L);
      if (SD.Kind != StaticDepKind::Must &&
          SD.Kind != StaticDepKind::MustAddr)
        continue;
      OracleEntry E;
      E.Load = L.Name;
      E.Store = S.Name;
      E.Static = SD.Kind;
      E.Distance1 = SD.Distance1;
      E.Verdict = DepVerdict::MustSync;
      E.Forced = true;
      E.Reason = "forced-absent-from-profile";
      if (DE)
        DE->note("dep-oracle", "forced-static-pair",
                 "static " + std::string(staticDepKindName(SD.Kind)) +
                     " dependence " + describeRef(E.Store) + " -> " +
                     describeRef(E.Load) +
                     " absent from profile; forcing synchronization");
      R.Entries.push_back(std::move(E));
    }
  }

  for (const OracleEntry &E : R.Entries) {
    switch (E.Verdict) {
    case DepVerdict::MustSync:
      if (E.Forced)
        ++R.StaticForced;
      else
        ++R.StaticConfirmed;
      break;
    case DepVerdict::Impossible:
      ++R.StaticPruned;
      break;
    case DepVerdict::Speculate:
      ++R.Speculated;
      break;
    }
  }

  // Deterministic table order: by (load, store).
  std::sort(R.Entries.begin(), R.Entries.end(),
            [](const OracleEntry &A, const OracleEntry &B) {
              return std::tie(A.Load, A.Store) < std::tie(B.Load, B.Store);
            });
  return R;
}
