//===- analysis/Remediator.cpp - Dependence-remediator ensemble -*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Remediator.h"

#include "analysis/Diag.h"
#include "ir/CFG.h"
#include "obs/Json.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <sstream>
#include <string_view>

using namespace specsync;
using namespace specsync::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

const Instruction &instAt(const Program &P, const MemRef &R) {
  return P.getFunction(R.Func).getBlock(R.Block).instructions()[R.Pos];
}

/// The single concrete word address of a singleton AddrInfo.
std::optional<uint64_t> singletonAddr(const AddrInfo &A, const Program &P) {
  if (!A.isSingleton())
    return std::nullopt;
  if (!A.RawAddrs.empty())
    return static_cast<uint64_t>(*A.RawAddrs.begin());
  for (const auto &[G, Offs] : A.ByGlobal)
    if (!Offs.Unknown && !Offs.Offsets.empty())
      return P.globals()[G].BaseAddr +
             static_cast<uint64_t>(*Offs.Offsets.begin());
  return std::nullopt;
}

std::optional<ReduceOpKind> reduceKindFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return ReduceOpKind::Add;
  case Opcode::Mul: return ReduceOpKind::Mul;
  case Opcode::And: return ReduceOpKind::And;
  case Opcode::Or: return ReduceOpKind::Or;
  case Opcode::Xor: return ReduceOpKind::Xor;
  default: return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Known-bits over address computations (residue module)
//===----------------------------------------------------------------------===//

/// Per-value known-bits: bit i of Zeros (Ones) set means the value's bit i
/// is 0 (1) on every execution. Unset in both means unknown.
struct KnownBits {
  uint64_t Zeros = 0;
  uint64_t Ones = 0;
  uint64_t known() const { return Zeros | Ones; }
};

KnownBits kbExact(uint64_t V) { return {~V, V}; }
KnownBits kbUnknown() { return {0, 0}; }
KnownBits kbJoin(KnownBits A, KnownBits B) {
  return {A.Zeros & B.Zeros, A.Ones & B.Ones};
}
KnownBits kbNot(KnownBits A) { return {A.Ones, A.Zeros}; }
KnownBits kbAnd(KnownBits A, KnownBits B) {
  return {A.Zeros | B.Zeros, A.Ones & B.Ones};
}
KnownBits kbOr(KnownBits A, KnownBits B) {
  return {A.Zeros & B.Zeros, A.Ones | B.Ones};
}
KnownBits kbXor(KnownBits A, KnownBits B) {
  uint64_t K = A.known() & B.known();
  uint64_t V = (A.Ones ^ B.Ones) & K;
  return {K & ~V, V};
}

/// Ripple-carry: bits are known from the bottom until the first unknown
/// operand bit (the carry becomes unknown there).
KnownBits kbAdd(KnownBits A, KnownBits B, unsigned CarryIn) {
  KnownBits R;
  unsigned Carry = CarryIn;
  for (unsigned I = 0; I < 64; ++I) {
    if (!((A.known() >> I) & 1) || !((B.known() >> I) & 1))
      break;
    unsigned S = ((A.Ones >> I) & 1) + ((B.Ones >> I) & 1) + Carry;
    Carry = S >> 1;
    if (S & 1)
      R.Ones |= 1ull << I;
    else
      R.Zeros |= 1ull << I;
  }
  return R;
}
KnownBits kbSub(KnownBits A, KnownBits B) { return kbAdd(A, kbNot(B), 1); }

/// Count of consecutive known-zero low bits.
unsigned kbLowZeros(KnownBits A) {
  unsigned N = 0;
  while (N < 64 && ((A.Zeros >> N) & 1))
    ++N;
  return N;
}

KnownBits kbMul(KnownBits A, KnownBits B) {
  if (A.known() == ~0ull && B.known() == ~0ull)
    return kbExact(A.Ones * B.Ones);
  unsigned T = kbLowZeros(A) + kbLowZeros(B);
  if (T >= 64)
    return kbExact(0);
  KnownBits R;
  R.Zeros = (1ull << T) - 1;
  return R;
}

KnownBits kbShl(KnownBits A, unsigned C) {
  if (C == 0)
    return A;
  return {(A.Zeros << C) | ((1ull << C) - 1), A.Ones << C};
}
KnownBits kbShr(KnownBits A, unsigned C) { // Logical (engines mask & shift
  if (C == 0)                              // unsigned), see Interpreter.
    return A;
  return {(A.Zeros >> C) | ~(~0ull >> C), A.Ones >> C};
}

/// Flow-insensitive interprocedural known-bits: one lattice cell per
/// (function, register), joined over every definition, with call-site
/// argument -> parameter and Ret -> call-destination propagation.
///
/// Registers read before their first definition hold 0 at runtime (frames
/// are zero-initialized), which a join over definitions alone would miss.
/// A must-defined forward dataflow over the CFG finds the registers some
/// path can read before any definition; exactly those are zero-seeded —
/// every other register's reads only ever observe defined values, so the
/// join over its definitions covers them.
class KnownBitsAnalysis {
public:
  explicit KnownBitsAnalysis(const Program &P) : Prog(P) {
    Regs.resize(P.getNumFunctions());
    Rets.resize(P.getNumFunctions());
    for (unsigned FI = 0; FI < P.getNumFunctions(); ++FI)
      seedFunction(FI);
    run();
  }

  KnownBits operandBits(unsigned Func, const Operand &Op) const {
    if (Op.isImm())
      return kbExact(static_cast<uint64_t>(Op.getImm()));
    const Cell &C = Regs[Func][Op.getReg()];
    return C.Defined ? C.KB : kbUnknown();
  }

private:
  struct Cell {
    KnownBits KB;
    bool Defined = false;
  };

  static bool joinInto(Cell &C, KnownBits KB) {
    if (!C.Defined) {
      C.Defined = true;
      C.KB = KB;
      return true;
    }
    KnownBits J = kbJoin(C.KB, KB);
    if (J.Zeros == C.KB.Zeros && J.Ones == C.KB.Ones)
      return false;
    C.KB = J;
    return true;
  }

  void seedFunction(unsigned FI) {
    const Function &F = Prog.getFunction(FI);
    Regs[FI].resize(F.getNumRegs());
    // Entry-function parameters are externally supplied: unknown.
    if (FI == Prog.getEntry())
      for (unsigned R = 0; R < F.getNumParams(); ++R)
        joinInto(Regs[FI][R], kbUnknown());
    std::vector<bool> Uninit = maybeReadBeforeDef(F);
    for (unsigned R = 0; R < F.getNumRegs(); ++R)
      if (Uninit[R])
        joinInto(Regs[FI][R], kbExact(0));
  }

  /// Registers some execution can read before any definition (they then
  /// hold 0). Must-defined forward dataflow: a register is defined on
  /// block entry iff it is defined on exit of every reachable predecessor
  /// (function entry: the parameters). Reads of a not-must-defined
  /// register are flagged; unreachable blocks never execute and are
  /// ignored.
  static std::vector<bool> maybeReadBeforeDef(const Function &F) {
    unsigned NR = F.getNumRegs();
    std::vector<bool> Flagged(NR, false);
    if (F.getNumBlocks() == 0 || NR == 0)
      return Flagged;
    CFG G(F);
    const std::vector<unsigned> &RPO = G.reversePostOrder();
    if (RPO.empty())
      return Flagged;
    unsigned EntryBlock = RPO.front();
    // Optimistic start (all defined); intersections only shrink, so a
    // read flagged at any iteration is still undefined at the fixpoint.
    std::vector<std::vector<bool>> Out(F.getNumBlocks(),
                                       std::vector<bool>(NR, true));
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BI : RPO) {
        std::vector<bool> In(NR, false);
        if (BI == EntryBlock) {
          // A back-edge into the entry cannot undefine anything (defs
          // only accumulate), so the call-entry state is the meet.
          for (unsigned R = 0; R < F.getNumParams(); ++R)
            In[R] = true;
        } else {
          In.assign(NR, true);
          for (unsigned P : G.predecessors(BI)) {
            if (!G.isReachable(P))
              continue;
            for (unsigned R = 0; R < NR; ++R)
              In[R] = In[R] && Out[P][R];
          }
        }
        for (const Instruction &I : F.getBlock(BI).instructions()) {
          for (const Operand &Op : I.operands())
            if (Op.isReg() && !In[Op.getReg()])
              Flagged[Op.getReg()] = true;
          if (I.hasDest())
            In[I.getDest()] = true;
        }
        if (In != Out[BI]) {
          Out[BI] = std::move(In);
          Changed = true;
        }
      }
    }
    return Flagged;
  }

  KnownBits transfer(unsigned FI, const Instruction &I) const {
    auto Bits = [&](unsigned Idx) { return operandBits(FI, I.getOperand(Idx)); };
    switch (I.getOpcode()) {
    case Opcode::Const:
    case Opcode::Move:
      return Bits(0);
    case Opcode::Add:
      return kbAdd(Bits(0), Bits(1), 0);
    case Opcode::Sub:
      return kbSub(Bits(0), Bits(1));
    case Opcode::Mul:
      return kbMul(Bits(0), Bits(1));
    case Opcode::And:
      return kbAnd(Bits(0), Bits(1));
    case Opcode::Or:
      return kbOr(Bits(0), Bits(1));
    case Opcode::Xor:
      return kbXor(Bits(0), Bits(1));
    case Opcode::Shl:
    case Opcode::Shr: {
      KnownBits B = Bits(1);
      if ((B.known() & 63) != 63)
        return kbUnknown(); // Engines mask the amount with & 63.
      unsigned C = static_cast<unsigned>(B.Ones & 63);
      return I.getOpcode() == Opcode::Shl ? kbShl(Bits(0), C)
                                          : kbShr(Bits(0), C);
    }
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      return {~1ull, 0}; // 0 or 1: every bit but bit 0 is known zero.
    case Opcode::Select:
      return kbJoin(Bits(1), Bits(2));
    default:
      return kbUnknown(); // Div/Mod/Rand/Load/forwarding markers/...
    }
  }

  void run() {
    bool Changed = true;
    for (unsigned Pass = 0; Changed && Pass < 256; ++Pass) {
      Changed = false;
      for (unsigned FI = 0; FI < Prog.getNumFunctions(); ++FI) {
        const Function &F = Prog.getFunction(FI);
        for (unsigned BI = 0; BI < F.getNumBlocks(); ++BI) {
          for (const Instruction &I : F.getBlock(BI).instructions()) {
            if (I.getOpcode() == Opcode::Call) {
              unsigned Callee = I.getCallee();
              unsigned NP = Prog.getFunction(Callee).getNumParams();
              for (unsigned A = 0; A < NP; ++A)
                Changed |= joinInto(Regs[Callee][A],
                                    A < I.getNumOperands()
                                        ? operandBits(FI, I.getOperand(A))
                                        : kbExact(0));
              if (I.hasDest() && Rets[Callee].Defined)
                Changed |= joinInto(Regs[FI][I.getDest()], Rets[Callee].KB);
              continue;
            }
            if (I.getOpcode() == Opcode::Ret) {
              Changed |= joinInto(Rets[FI], I.getNumOperands() == 1
                                                ? operandBits(FI, I.getOperand(0))
                                                : kbExact(0));
              continue;
            }
            if (I.hasDest())
              Changed |= joinInto(Regs[FI][I.getDest()], transfer(FI, I));
          }
        }
      }
    }
  }

  const Program &Prog;
  std::vector<std::vector<Cell>> Regs; ///< [func][reg].
  std::vector<Cell> Rets;              ///< [func]: joined Ret values.
};

//===----------------------------------------------------------------------===//
// Module 1: alias-line (Andersen points-to disjointness)
//===----------------------------------------------------------------------===//

class AliasLineRemediator : public Remediator {
public:
  explicit AliasLineRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "alias-line"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    if (Ctx.AA.alias(Q.Store->Addr, Q.Load->Addr) != AliasResult::NoAlias)
      return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::None;
    V.Cost = 0;
    V.Detail = "points-to disjoint: store " + Q.Store->Addr.render(Ctx.Prog) +
               " vs load " + Q.Load->Addr.render(Ctx.Prog);
    return true;
  }

private:
  const RemedyContext &Ctx;
};

//===----------------------------------------------------------------------===//
// Module 2: kill (intra-epoch must-execute kill refutation)
//===----------------------------------------------------------------------===//

class KillRemediator : public Remediator {
public:
  explicit KillRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "kill"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    if (Ctx.AA.alias(Q.Store->Addr, Q.Load->Addr) != AliasResult::MustAlias)
      return false;
    if (Ctx.Tester.classify(*Q.Store, *Q.Load).Kind != StaticDepKind::NoDep)
      return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::None;
    V.Cost = 0;
    V.Detail = "killed: the store must-executes before the load within every "
               "iteration, so the load never observes a previous epoch";
    return true;
  }

private:
  const RemedyContext &Ctx;
};

//===----------------------------------------------------------------------===//
// Module 3: readonly (the load reads data no region store can write)
//===----------------------------------------------------------------------===//

class ReadOnlyRemediator : public Remediator {
public:
  explicit ReadOnlyRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "readonly"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    if (!Ctx.Tester.isComplete())
      return false; // The write summary could miss references.
    build();
    if (AnyUnknownWrite || Q.Load->Addr.Unknown)
      return false;
    for (const auto &[G, Offs] : Q.Load->Addr.ByGlobal)
      if (WrittenGlobals.count(G))
        return false;
    for (int64_t A : Q.Load->Addr.RawAddrs)
      if (WrittenRaw.count(A))
        return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::None;
    V.Cost = 0;
    V.Detail = "read-only: " + Q.Load->Addr.render(Ctx.Prog) +
               " is disjoint from every global the region writes";
    return true;
  }

private:
  void build() {
    if (Built)
      return;
    Built = true;
    for (const MemRef &R : Ctx.Tester.refs()) {
      if (R.IsLoad)
        continue;
      if (R.Addr.Unknown) {
        AnyUnknownWrite = true;
        return;
      }
      for (const auto &[G, Offs] : R.Addr.ByGlobal)
        WrittenGlobals.insert(G);
      for (int64_t A : R.Addr.RawAddrs)
        WrittenRaw.insert(A);
    }
  }

  const RemedyContext &Ctx;
  bool Built = false;
  bool AnyUnknownWrite = false;
  std::set<unsigned> WrittenGlobals;
  std::set<int64_t> WrittenRaw;
};

//===----------------------------------------------------------------------===//
// Module 4: reduction (x = x op e chains -> per-epoch accumulator)
//===----------------------------------------------------------------------===//

class ReductionRemediator : public Remediator {
public:
  explicit ReductionRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "reduction"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    if (Q.Store->Func != Q.Load->Func)
      return false;
    StaticDepResult DR = Ctx.Tester.classify(*Q.Store, *Q.Load);
    if (DR.Kind != StaticDepKind::Must || !DR.Distance1)
      return false;
    std::optional<uint64_t> X = singletonAddr(Q.Load->Addr, Ctx.Prog);
    if (!X)
      return false;
    const ChainInfo &CI = chainFor(Q.Load->Func, *X, Q.Load->Addr);
    if (!CI.Matched)
      return false;
    if (!CI.Ids.count(Q.Load->Name.InstId) || !CI.Ids.count(Q.Store->Name.InstId))
      return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::Reduce;
    V.Cost = RemedyCost::Reduce;
    V.Reductions = CI.Triples;
    std::ostringstream D;
    D << "reduction chain over " << Q.Load->Addr.render(Ctx.Prog) << " ("
      << reduceOpName(CI.Op) << ", " << CI.Triples.size()
      << " triple(s)): per-epoch partial accumulator folded at commit";
    V.Detail = D.str();
    return true;
  }

private:
  struct ChainInfo {
    bool Matched = false;
    ReduceOpKind Op = ReduceOpKind::Add;
    std::vector<ReductionRewrite> Triples;
    std::set<uint32_t> Ids; ///< Load + op + store ids of every triple.
  };

  /// True when \p I reads or writes register \p R.
  static bool touches(const Instruction &I, unsigned R) {
    for (const Operand &Op : I.operands())
      if (Op.isReg() && Op.getReg() == R)
        return true;
    return I.hasDest() && I.getDest() == R;
  }

  const ChainInfo &chainFor(unsigned Func, uint64_t X, const AddrInfo &XAddr) {
    auto [It, New] = Cache.try_emplace({Func, X});
    if (!New)
      return It->second;
    match(Func, XAddr, It->second);
    return It->second;
  }

  /// Matches the complete reduction chain of location \p XAddr inside
  /// function \p Func: every access to X must be part of a
  /// load-binop-store triple (unrolled loop bodies contribute one triple
  /// each, all with the same operator), the chain registers must not
  /// escape, and no other region reference may touch X. All-or-nothing:
  /// rewriting a subset of the triples would leave the remaining copies
  /// reading a shared location that misses the private accumulation.
  void match(unsigned FuncIdx, const AddrInfo &XAddr, ChainInfo &CI) {
    if (!Ctx.Tester.isComplete())
      return;
    const Function &F = Ctx.Prog.getFunction(FuncIdx);
    std::vector<ReductionRewrite> Triples;
    std::optional<ReduceOpKind> ChainOp;
    // Per chain register: the ids allowed to read / write it.
    std::map<unsigned, std::set<uint32_t>> AllowedReaders, AllowedWriters;

    // Only region references participate: accesses to X outside the
    // region (entry-block initialization, post-loop readout) run
    // sequentially, where a rewritten Reduce is exactly load-op-store.
    // The region closure below re-checks that every in-region toucher of
    // X joined the chain.
    std::set<uint32_t> RegionIds;
    for (const MemRef &R : Ctx.Tester.refs())
      RegionIds.insert(R.Name.InstId);

    for (unsigned BI = 0; BI < F.getNumBlocks(); ++BI) {
      const auto &Insts = F.getBlock(BI).instructions();
      for (size_t P1 = 0; P1 < Insts.size(); ++P1) {
        const Instruction &IL = Insts[P1];
        bool IsMem = IL.getOpcode() == Opcode::Load ||
                     IL.getOpcode() == Opcode::Store ||
                     IL.getOpcode() == Opcode::Reduce;
        if (!IsMem || !RegionIds.count(IL.getId()))
          continue;
        AliasResult AR = Ctx.AA.alias(Ctx.AA.addressOf(FuncIdx, IL), XAddr);
        if (AR == AliasResult::NoAlias)
          continue;
        // Every X access must open a triple: a must-alias load.
        if (IL.getOpcode() != Opcode::Load || AR != AliasResult::MustAlias)
          return;
        unsigned RV = IL.getDest();

        // P2: the next touch of RV must be the reduction binop.
        size_t P2 = P1 + 1;
        while (P2 < Insts.size() && !touches(Insts[P2], RV))
          ++P2;
        if (P2 == Insts.size())
          return;
        const Instruction &IOp = Insts[P2];
        std::optional<ReduceOpKind> K = reduceKindFor(IOp.getOpcode());
        if (!K || !IOp.hasDest() || IOp.getNumOperands() != 2)
          return;
        unsigned RB = IOp.getDest();
        unsigned NumRV = 0;
        Operand E = Operand::imm(0);
        for (const Operand &Op : IOp.operands()) {
          if (Op.isReg() && Op.getReg() == RV)
            ++NumRV;
          else
            E = Op;
        }
        if (NumRV != 1 || RB == RV)
          return;
        if (E.isReg() && (E.getReg() == RV || E.getReg() == RB))
          return;

        // P3: the next touch of RB must be the store back to X.
        size_t P3 = P2 + 1;
        while (P3 < Insts.size() && !touches(Insts[P3], RB))
          ++P3;
        if (P3 == Insts.size())
          return;
        const Instruction &IS = Insts[P3];
        if (IS.getOpcode() != Opcode::Store)
          return;
        const Operand &SAddr = IS.getOperand(0);
        const Operand &SVal = IS.getOperand(1);
        if (!SVal.isReg() || SVal.getReg() != RB)
          return;
        if (SAddr.isReg() && SAddr.getReg() == RB)
          return;
        if (Ctx.AA.alias(Ctx.AA.addressOf(FuncIdx, IS), XAddr) !=
            AliasResult::MustAlias)
          return;

        // Window (P1, P3): nothing else may touch RV/RB, call out, access
        // anything aliasing X, or (past the binop, where the rewritten
        // Reduce will re-evaluate it) redefine E.
        for (size_t P = P1 + 1; P < P3; ++P) {
          if (P == P2)
            continue;
          const Instruction &IW = Insts[P];
          if (touches(IW, RV) || touches(IW, RB))
            return;
          if (IW.getOpcode() == Opcode::Call)
            return;
          bool WMem = IW.getOpcode() == Opcode::Load ||
                      IW.getOpcode() == Opcode::Store ||
                      IW.getOpcode() == Opcode::Reduce;
          if (WMem && Ctx.AA.alias(Ctx.AA.addressOf(FuncIdx, IW), XAddr) !=
                          AliasResult::NoAlias)
            return;
          if (P > P2 && E.isReg() && IW.hasDest() && IW.getDest() == E.getReg())
            return;
        }

        if (ChainOp && *ChainOp != *K)
          return;
        ChainOp = *K;
        Triples.push_back({IL.getId(), IOp.getId(), IS.getId(), *K});
        AllowedReaders[RV].insert(IOp.getId());
        AllowedWriters[RV].insert(IL.getId());
        AllowedReaders[RB].insert(IS.getId());
        AllowedWriters[RB].insert(IOp.getId());
        P1 = P3; // Continue past this triple.
      }
    }
    if (Triples.empty())
      return;

    // Escape closure: the chain registers must not be read or written by
    // anything outside their own triples (the load/binop values cease to
    // exist after the rewrite).
    for (unsigned BI = 0; BI < F.getNumBlocks(); ++BI) {
      for (const Instruction &I : F.getBlock(BI).instructions()) {
        for (const Operand &Op : I.operands()) {
          if (!Op.isReg())
            continue;
          auto RIt = AllowedReaders.find(Op.getReg());
          if (RIt != AllowedReaders.end() && !RIt->second.count(I.getId()))
            return;
        }
        if (I.hasDest()) {
          auto WIt = AllowedWriters.find(I.getDest());
          if (WIt != AllowedWriters.end() && !WIt->second.count(I.getId()))
            return;
        }
      }
    }

    std::set<uint32_t> Ids;
    for (const ReductionRewrite &T : Triples) {
      Ids.insert(T.LoadId);
      Ids.insert(T.OpId);
      Ids.insert(T.StoreId);
    }
    // Region closure: every enumerated reference that may touch X must be
    // one of the chain's own loads/stores (other functions included).
    for (const MemRef &R : Ctx.Tester.refs()) {
      if (Ctx.AA.alias(R.Addr, XAddr) == AliasResult::NoAlias)
        continue;
      if (!Ids.count(R.Name.InstId))
        return;
    }

    CI.Matched = true;
    CI.Op = *ChainOp;
    CI.Triples = std::move(Triples);
    CI.Ids = std::move(Ids);
  }

  const RemedyContext &Ctx;
  std::map<std::pair<unsigned, uint64_t>, ChainInfo> Cache;
};

//===----------------------------------------------------------------------===//
// Module 5: shortlived (epoch-local locations -> privatization)
//===----------------------------------------------------------------------===//

class ShortLivedRemediator : public Remediator {
public:
  explicit ShortLivedRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "shortlived"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    std::optional<uint64_t> X = singletonAddr(Q.Load->Addr, Ctx.Prog);
    if (!X)
      return false;
    // The store must actually target the location for the remedy payload
    // to be about this pair.
    if (Ctx.AA.alias(Q.Store->Addr, Q.Load->Addr) == AliasResult::NoAlias)
      return false;
    const Proof &P = proofFor(*X, Q.Load->Addr);
    if (!P.Local)
      return false;
    V.NoDep = true;
    if (P.StoreIds.empty()) {
      V.Remedy = RemedyKind::None;
      V.Cost = 0;
    } else {
      V.Remedy = RemedyKind::Privatize;
      V.Cost = RemedyCost::Privatize;
      V.PrivatizeStoreIds = P.StoreIds;
    }
    std::ostringstream D;
    D << "epoch-local: every read of " << Q.Load->Addr.render(Ctx.Prog)
      << " is covered by a same-epoch store; privatizing "
      << P.StoreIds.size() << " store(s)";
    V.Detail = D.str();
    return true;
  }

  /// The plan builder's per-location sweep entry point.
  bool proveLocal(const AddrInfo &Addr, std::vector<uint32_t> &StoreIds) {
    std::optional<uint64_t> X = singletonAddr(Addr, Ctx.Prog);
    if (!X)
      return false;
    const Proof &P = proofFor(*X, Addr);
    if (!P.Local || P.StoreIds.empty())
      return false;
    StoreIds.insert(StoreIds.end(), P.StoreIds.begin(), P.StoreIds.end());
    return true;
  }

private:
  struct Proof {
    bool Local = false;
    std::vector<uint32_t> StoreIds; ///< Must-alias stores of the location.
  };

  /// Location X is epoch-local iff every enumerated load that may read X
  /// is killed by a must-alias store within its own iteration (the
  /// DepTester's must-execute + dominance NoDep case). Then no load ever
  /// observes a previous epoch's value of X and X's stores need no
  /// conflict tracking.
  const Proof &proofFor(uint64_t X, const AddrInfo &XAddr) {
    auto [It, New] = Cache.try_emplace(X);
    Proof &P = It->second;
    if (!New)
      return P;
    if (!Ctx.Tester.isComplete())
      return P; // Unenumerated references could read X.
    for (const MemRef &LR : Ctx.Tester.refs()) {
      if (!LR.IsLoad)
        continue;
      if (Ctx.AA.alias(LR.Addr, XAddr) == AliasResult::NoAlias)
        continue;
      bool Covered = false;
      for (const MemRef &SR : Ctx.Tester.refs()) {
        if (SR.IsLoad)
          continue;
        if (Ctx.AA.alias(SR.Addr, LR.Addr) != AliasResult::MustAlias)
          continue;
        if (Ctx.Tester.classify(SR, LR).Kind == StaticDepKind::NoDep) {
          Covered = true;
          break;
        }
      }
      if (!Covered)
        return P;
    }
    P.Local = true;
    std::set<uint32_t> Ids;
    for (const MemRef &SR : Ctx.Tester.refs())
      if (!SR.IsLoad &&
          Ctx.AA.alias(SR.Addr, XAddr) == AliasResult::MustAlias)
        Ids.insert(SR.Name.InstId);
    P.StoreIds.assign(Ids.begin(), Ids.end());
    return P;
  }

  const RemedyContext &Ctx;
  std::map<uint64_t, Proof> Cache;
};

//===----------------------------------------------------------------------===//
// Module 6: residue (known-bits word disjointness -> padding)
//===----------------------------------------------------------------------===//

class ResidueRemediator : public Remediator {
public:
  explicit ResidueRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "residue"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Q.Store || !Q.Load)
      return false;
    if (!KB)
      KB = std::make_unique<KnownBitsAnalysis>(Ctx.Prog);
    const Instruction &SI = instAt(Ctx.Prog, *Q.Store);
    const Instruction &LI = instAt(Ctx.Prog, *Q.Load);
    KnownBits KS = KB->operandBits(Q.Store->Func, SI.getOperand(0));
    KnownBits KL = KB->operandBits(Q.Load->Func, LI.getOperand(0));
    // Bits provably different between the two addresses.
    uint64_t Diff = (KS.Ones & KL.Zeros) | (KS.Zeros & KL.Ones);
    if (Diff >> Ctx.LineShift) {
      V.NoDep = true;
      V.Remedy = RemedyKind::None;
      V.Cost = 0;
      V.Detail = "known address bits differ at or above the line granule: "
                 "the accesses can never share a conflict line";
      return true;
    }
    uint64_t WordDiff = Diff & ~7ull & ((1ull << Ctx.LineShift) - 1);
    if (!WordDiff)
      return false;
    // Word-disjoint but possibly line-sharing: grant the load's words
    // their own conflict granule. Padding is symmetric by address, so a
    // (statically refuted) same-word dependence would still be caught at
    // word granularity — the remedy is unconditionally sound.
    std::vector<std::pair<uint64_t, uint64_t>> Ranges;
    if (!collectLoadWords(*Q.Load, KL, Ranges) || Ranges.empty())
      return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::Pad;
    V.Cost = RemedyCost::Pad;
    V.PadRanges = std::move(Ranges);
    std::ostringstream D;
    D << "word-disjoint by known address bits (differing word bit "
      << lowestBit(WordDiff) << "); padding " << V.PadRanges.size()
      << " word range(s) of " << Q.Load->Addr.render(Ctx.Prog)
      << " onto private conflict granules";
    V.Detail = D.str();
    return true;
  }

private:
  static unsigned lowestBit(uint64_t V) {
    unsigned N = 0;
    while (N < 64 && !((V >> N) & 1))
      ++N;
    return N;
  }

  /// The concrete words the load can touch. Unknown-offset globals are
  /// enumerated and filtered through the load's known address bits; the
  /// total is capped so a pad set never degenerates into "pad everything".
  bool collectLoadWords(const MemRef &L, KnownBits KL,
                        std::vector<std::pair<uint64_t, uint64_t>> &Ranges) {
    static constexpr size_t MaxWords = 4096;
    if (L.Addr.Unknown)
      return false;
    size_t Count = 0;
    auto AddWord = [&](uint64_t W) {
      Ranges.emplace_back(W, W + Program::WordBytes);
      return ++Count <= MaxWords;
    };
    for (const auto &[G, Offs] : L.Addr.ByGlobal) {
      const GlobalVar &GV = Ctx.Prog.globals()[G];
      if (Offs.Unknown) {
        for (uint64_t W = GV.BaseAddr; W < GV.BaseAddr + GV.SizeBytes;
             W += Program::WordBytes) {
          if ((W & KL.Zeros) || (~W & KL.Ones))
            continue; // Incompatible with the load's known bits.
          if (!AddWord(W))
            return false;
        }
      } else {
        for (int64_t Off : Offs.Offsets)
          if (!AddWord(GV.BaseAddr + static_cast<uint64_t>(Off)))
            return false;
      }
    }
    for (int64_t A : L.Addr.RawAddrs)
      if (!AddWord(static_cast<uint64_t>(A)))
        return false;
    return true;
  }

  const RemedyContext &Ctx;
  std::unique_ptr<KnownBitsAnalysis> KB;
};

//===----------------------------------------------------------------------===//
// Module 7: profile (LAMP-style infrequent-dependence speculation)
//===----------------------------------------------------------------------===//

class ProfileRemediator : public Remediator {
public:
  explicit ProfileRemediator(const RemedyContext &Ctx) : Ctx(Ctx) {}
  const char *name() const override { return "profile"; }

  bool answer(const RemedyQuery &Q, RemedyVerdict &V) override {
    if (!Ctx.Profile || Ctx.Profile->TotalEpochs == 0)
      return false;
    if (Q.FreqPercent > Ctx.ThresholdPercent)
      return false;
    V.NoDep = true;
    V.Remedy = RemedyKind::Speculate;
    V.Cost = RemedyCost::speculate(Q.FreqPercent);
    std::ostringstream D;
    if (Q.InProfile)
      D << "profile: observed in " << Q.FreqPercent
        << "% of epochs (threshold " << Ctx.ThresholdPercent
        << "%); left to TLS hardware at expected squash cost";
    else
      D << "profile: never observed in " << Ctx.Profile->TotalEpochs
        << " profiled epochs; left to TLS hardware";
    V.Detail = D.str();
    return true;
  }

private:
  const RemedyContext &Ctx;
};

} // namespace

//===----------------------------------------------------------------------===//
// RemedyChain
//===----------------------------------------------------------------------===//

RemedyChain::RemedyChain(const RemedyContext &Ctx) : Ctx(Ctx) {
  Modules.push_back(std::make_unique<AliasLineRemediator>(Ctx));
  Modules.push_back(std::make_unique<KillRemediator>(Ctx));
  Modules.push_back(std::make_unique<ReadOnlyRemediator>(Ctx));
  Modules.push_back(std::make_unique<ReductionRemediator>(Ctx));
  Modules.push_back(std::make_unique<ShortLivedRemediator>(Ctx));
  Modules.push_back(std::make_unique<ResidueRemediator>(Ctx));
  Modules.push_back(std::make_unique<ProfileRemediator>(Ctx));
}

RemedyChain::~RemedyChain() = default;

RemedyVerdict RemedyChain::query(const RemedyQuery &Q) {
  ++Lookups;
  Key K{Q.Store ? Q.Store->Name.InstId : 0, Q.Store ? Q.Store->Name.Context : 0,
        Q.Load ? Q.Load->Name.InstId : 0, Q.Load ? Q.Load->Name.Context : 0,
        Q.Budget};
  auto It = Memo.find(K);
  if (It != Memo.end()) {
    ++Hits;
    return It->second;
  }
  RemedyVerdict Best;
  for (const std::unique_ptr<Remediator> &M : Modules) {
    RemedyVerdict V;
    if (!M->answer(Q, V))
      continue;
    V.Module = M->name();
    if (V.Cost > Q.Budget)
      continue;
    if (!Best.NoDep || V.Cost < Best.Cost) // Ties go to the earlier module.
      Best = std::move(V);
  }
  Memo.emplace(K, Best);
  return Best;
}

std::vector<RemedyVerdict> RemedyChain::queryAll(const RemedyQuery &Q) {
  std::vector<RemedyVerdict> Out;
  for (const std::unique_ptr<Remediator> &M : Modules) {
    RemedyVerdict V;
    if (!M->answer(Q, V))
      V = RemedyVerdict{}; // The contract allows partial writes on "no".
    V.Module = M->name();
    if (!V.NoDep && V.Detail.empty())
      V.Detail = "no answer";
    Out.push_back(std::move(V));
  }
  return Out;
}

bool RemedyChain::proveEpochLocal(const AddrInfo &Addr,
                                  std::vector<uint32_t> &StoreIds) {
  for (const std::unique_ptr<Remediator> &M : Modules)
    if (std::string_view(M->name()) == "shortlived")
      return static_cast<ShortLivedRemediator &>(*M).proveLocal(Addr,
                                                                StoreIds);
  return false;
}

//===----------------------------------------------------------------------===//
// Plan building
//===----------------------------------------------------------------------===//

namespace {

/// A candidate pair posed to the chain.
struct Candidate {
  const MemRef *Store = nullptr;
  const MemRef *Load = nullptr;
  bool InProfile = false;
  double FreqPercent = 0.0;
};

void gateWarning(DiagEngine *DE, const RefName &Load, const RefName &Store,
                 const std::string &Module, double Freq, const char *What) {
  if (!DE)
    return;
  std::ostringstream M;
  M << "module '" << Module << "' claims " << What << " for pair (load #"
    << Load.InstId << ", store #" << Store.InstId
    << ") the profiler observed in " << Freq
    << "% of epochs; verdict discarded (stale profile?)";
  Diag &D = DE->warning("remediator", "soundness-gate", M.str());
  D.InstId = Load.InstId;
}

} // namespace

RemedyPlan specsync::analysis::buildRemedyPlan(const RemedyContext &Ctx,
                                               DiagEngine *DE) {
  RemedyPlan Plan;
  Plan.Enabled = true;
  RemedyChain Chain(Ctx);

  // The word-exact profile is ground truth: the static ids of stores it
  // observed sourcing a cross-epoch dependence. A store on this list can
  // never be soundly exempted from conflict tracking.
  std::set<uint32_t> ProfileStoreIds;
  if (Ctx.Profile)
    for (const auto &[K, PS] : Ctx.Profile->Pairs)
      if (PS.EpochsWithDep > 0)
        ProfileStoreIds.insert(K.second.InstId);

  // Candidates: every profiled pair, plus the full static cross product —
  // false-sharing pairs never show up in the word-exact profile, and the
  // padding/privatization remedies exist exactly for those.
  std::map<std::pair<RefName, RefName>, Candidate> Cands;
  if (Ctx.Profile) {
    for (const auto &[K, PS] : Ctx.Profile->Pairs) {
      const MemRef *L = Ctx.Tester.findRef(K.first);
      const MemRef *S = Ctx.Tester.findRef(K.second);
      if (!L || !S)
        continue; // Stale profile name; the dep-oracle audits these.
      Cands[K] = {S, L, true, Ctx.Profile->pairFrequencyPercent(PS)};
    }
  }
  for (const MemRef &S : Ctx.Tester.refs()) {
    if (S.IsLoad)
      continue;
    for (const MemRef &L : Ctx.Tester.refs()) {
      if (!L.IsLoad)
        continue;
      Cands.try_emplace({L.Name, S.Name}, Candidate{&S, &L, false, 0.0});
    }
  }

  auto mergePrivatized = [&](std::vector<uint32_t> &Ids, const RefName &L,
                             const RefName &S, const std::string &Module,
                             double Freq) {
    // Gate: a store the profiler saw sourcing a dependence cannot be
    // exempted from tracking, whatever the static proof says.
    for (uint32_t Id : Ids)
      if (ProfileStoreIds.count(Id)) {
        ++Plan.GateRejected;
        gateWarning(DE, L, S, Module, Freq,
                    "epoch-locality of a profiled store");
        return false;
      }
    for (uint32_t Id : Ids)
      Plan.PrivatizedStores.insert(Id);
    return true;
  };

  for (auto &[K, C] : Cands) {
    unsigned Budget = RemedyCost::budget(C.FreqPercent);
    RemedyQuery Q{C.Store, C.Load, C.InProfile, C.FreqPercent, Budget};
    RemedyVerdict V = Chain.query(Q);

    // Soundness gate: a word-disjointness claim (None/Privatize/Pad)
    // against a profiler-observed dependence means the profile and the
    // static model disagree about the program; trust the profile.
    if (V.NoDep && C.InProfile &&
        (V.Remedy == RemedyKind::None || V.Remedy == RemedyKind::Privatize ||
         V.Remedy == RemedyKind::Pad)) {
      ++Plan.GateRejected;
      gateWarning(DE, K.first, K.second, V.Module, C.FreqPercent,
                  "word-disjointness");
      V = RemedyVerdict{};
    }

    RemedyDecision Dec;
    Dec.Load = K.first;
    Dec.Store = K.second;
    Dec.InProfile = C.InProfile;
    Dec.FreqPercent = C.FreqPercent;
    Dec.SyncCost = RemedyCost::sync(C.FreqPercent);

    if (V.NoDep) {
      switch (V.Remedy) {
      case RemedyKind::None:
        break; // Refuted outright; nothing to record or transform.
      case RemedyKind::Privatize:
        if (!V.PrivatizeStoreIds.empty() &&
            mergePrivatized(V.PrivatizeStoreIds, K.first, K.second, V.Module,
                            C.FreqPercent)) {
          Plan.RemediedPairs.insert(K);
          ++Plan.NumPrivatized;
          Dec.Remedy = RemedyKind::Privatize;
          Dec.Cost = V.Cost;
          Dec.Module = V.Module;
          Dec.Detail = V.Detail;
          Plan.Decisions.push_back(std::move(Dec));
        }
        break;
      case RemedyKind::Pad:
        for (const auto &[B, E] : V.PadRanges)
          Plan.Pads.add(B, E);
        Plan.RemediedPairs.insert(K);
        ++Plan.NumPadded;
        Dec.Remedy = RemedyKind::Pad;
        Dec.Cost = V.Cost;
        Dec.Module = V.Module;
        Dec.Detail = V.Detail;
        Plan.Decisions.push_back(std::move(Dec));
        break;
      case RemedyKind::Reduce: {
        for (const ReductionRewrite &T : V.Reductions) {
          bool Seen = false;
          for (const ReductionRewrite &Have : Plan.Reductions)
            if (Have.StoreId == T.StoreId)
              Seen = true;
          if (!Seen)
            Plan.Reductions.push_back(T);
        }
        Plan.RemediedPairs.insert(K);
        ++Plan.NumReduced;
        Dec.Remedy = RemedyKind::Reduce;
        Dec.Cost = V.Cost;
        Dec.Module = V.Module;
        Dec.Detail = V.Detail;
        Plan.Decisions.push_back(std::move(Dec));
        break;
      }
      case RemedyKind::Speculate:
        if (C.InProfile) { // Unobserved pairs need no decision row.
          ++Plan.NumSpeculated;
          Dec.Remedy = RemedyKind::Speculate;
          Dec.Cost = V.Cost;
          Dec.Module = V.Module;
          Dec.Detail = V.Detail;
          Plan.Decisions.push_back(std::move(Dec));
        }
        break;
      case RemedyKind::Sync:
        break; // Modules never grant Sync; it is the default below.
      }
      continue;
    }

    // No verdict within budget: the compiler's defaults. Frequent profiled
    // pairs get memory-resident synchronization (the paper's core
    // technique); infrequent ones ride on speculation. Unobserved pairs
    // with no verdict are left untracked (the TLS hardware covers them).
    if (C.InProfile && C.FreqPercent > Ctx.ThresholdPercent) {
      ++Plan.NumSynced;
      Dec.Remedy = RemedyKind::Sync;
      Dec.Cost = Dec.SyncCost;
      Dec.Detail = "frequent dependence: memory-resident synchronization";
      Plan.Decisions.push_back(std::move(Dec));
    } else if (C.InProfile) {
      ++Plan.NumSpeculated;
      Dec.Remedy = RemedyKind::Speculate;
      Dec.Cost = RemedyCost::speculate(C.FreqPercent);
      Dec.Detail = "no cheaper remedy within budget: left to speculation";
      Plan.Decisions.push_back(std::move(Dec));
    }
  }

  // Location sweep: privatize every provably epoch-local location even
  // when no candidate pair names it — cutting a store's write-summary
  // traffic (and its false-sharing squashes) needs no load witness.
  {
    std::set<uint64_t> SweptAddrs;
    for (const MemRef &S : Ctx.Tester.refs()) {
      if (S.IsLoad)
        continue;
      std::optional<uint64_t> X = singletonAddr(S.Addr, Ctx.Prog);
      if (!X || !SweptAddrs.insert(*X).second)
        continue;
      std::vector<uint32_t> Ids;
      if (Chain.proveEpochLocal(S.Addr, Ids) && !Ids.empty())
        mergePrivatized(Ids, S.Name, S.Name, "shortlived", 0.0);
    }
  }

  Plan.CacheLookups = Chain.cacheLookups();
  Plan.CacheHits = Chain.cacheHits();
  return Plan;
}

//===----------------------------------------------------------------------===//
// Report serialization
//===----------------------------------------------------------------------===//

void RemedyPlan::writeJson(obs::JsonWriter &W) const {
  W.beginObject();
  W.keyValue("enabled", Enabled);
  W.key("counters");
  W.beginObject();
  W.keyValue("synced", static_cast<uint64_t>(NumSynced));
  W.keyValue("speculated", static_cast<uint64_t>(NumSpeculated));
  W.keyValue("privatized", static_cast<uint64_t>(NumPrivatized));
  W.keyValue("padded", static_cast<uint64_t>(NumPadded));
  W.keyValue("reduced", static_cast<uint64_t>(NumReduced));
  W.keyValue("gate_rejected", static_cast<uint64_t>(GateRejected));
  W.endObject();
  W.keyValue("privatized_stores", static_cast<uint64_t>(PrivatizedStores.size()));
  W.keyValue("reductions", static_cast<uint64_t>(Reductions.size()));
  W.keyValue("pad_ranges", static_cast<uint64_t>(Pads.numRanges()));
  W.key("cache");
  W.beginObject();
  W.keyValue("lookups", CacheLookups);
  W.keyValue("hits", CacheHits);
  W.endObject();
  W.key("decisions");
  W.beginArray();
  for (const RemedyDecision &D : Decisions) {
    W.beginObject();
    W.keyValue("load_id", static_cast<uint64_t>(D.Load.InstId));
    W.keyValue("load_ctx", static_cast<uint64_t>(D.Load.Context));
    W.keyValue("store_id", static_cast<uint64_t>(D.Store.InstId));
    W.keyValue("store_ctx", static_cast<uint64_t>(D.Store.Context));
    W.keyValue("in_profile", D.InProfile);
    W.keyValue("freq_percent", D.FreqPercent);
    W.keyValue("remedy", remedyName(D.Remedy));
    W.keyValue("cost", static_cast<uint64_t>(D.Cost));
    W.keyValue("sync_cost", static_cast<uint64_t>(D.SyncCost));
    W.keyValue("module", D.Module);
    W.keyValue("detail", D.Detail);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}
