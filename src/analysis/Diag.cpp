//===- analysis/Diag.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Diag.h"

#include "ir/Program.h"
#include "obs/Json.h"

#include <algorithm>
#include <sstream>

using namespace specsync;
using namespace specsync::analysis;

const char *analysis::diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "<invalid>";
}

std::string Diag::render(const Program *P) const {
  std::ostringstream OS;
  OS << Pass << ": " << diagSeverityName(Severity) << ": " << Message;
  if (!Code.empty())
    OS << " [" << Code << "]";
  bool HaveFunc = P && Func != ~0u && Func < P->getNumFunctions();
  if (HaveFunc) {
    const Function &F = P->getFunction(Func);
    OS << " (at " << F.getName();
    if (Block != ~0u && Block < F.getNumBlocks())
      OS << ":" << F.getBlock(Block).getName();
    OS << ")";
  }
  if (InstId != 0) {
    OS << " [inst #" << InstId;
    if (P)
      OS << " = " << P->describeInstruction(InstId);
    OS << "]";
  }
  return OS.str();
}

Diag &DiagEngine::report(DiagSeverity Severity, std::string Pass,
                         std::string Code, std::string Message) {
  Diag D;
  D.Severity = Severity;
  D.Pass = std::move(Pass);
  D.Code = std::move(Code);
  D.Message = std::move(Message);
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  else if (Severity == DiagSeverity::Warning)
    ++NumWarnings;
  Diags.push_back(std::move(D));
  return Diags.back();
}

void DiagEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

void DiagEngine::merge(const DiagEngine &Other) {
  Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  NumErrors += Other.NumErrors;
  NumWarnings += Other.NumWarnings;
}

std::string DiagEngine::renderAll(const Program *P) const {
  // Stable sort: errors first, then warnings, then notes; emission order
  // within each severity.
  std::vector<const Diag *> Sorted;
  Sorted.reserve(Diags.size());
  for (const Diag &D : Diags)
    Sorted.push_back(&D);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Diag *A, const Diag *B) {
                     return static_cast<int>(A->Severity) >
                            static_cast<int>(B->Severity);
                   });
  std::string Out;
  for (const Diag *D : Sorted) {
    Out += D->render(P);
    Out += "\n";
  }
  return Out;
}

void DiagEngine::writeJson(obs::JsonWriter &W) const {
  W.beginArray();
  for (const Diag &D : Diags) {
    W.beginObject();
    W.keyValue("severity", diagSeverityName(D.Severity));
    W.keyValue("pass", D.Pass);
    W.keyValue("code", D.Code);
    W.keyValue("message", D.Message);
    if (D.Func != ~0u)
      W.keyValue("func", D.Func);
    if (D.Block != ~0u)
      W.keyValue("block", D.Block);
    if (D.InstId != 0)
      W.keyValue("inst_id", D.InstId);
    W.endObject();
  }
  W.endArray();
}
