//===- analysis/DepTester.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepTester.h"

#include "analysis/Diag.h"
#include "ir/CFG.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"

#include <algorithm>
#include <cassert>

using namespace specsync;
using namespace specsync::analysis;

/// Recursion depth cap for the region call walk; deeper nests abandon
/// completeness rather than the analysis.
static constexpr size_t MaxCallDepth = 64;

const char *analysis::staticDepKindName(StaticDepKind K) {
  switch (K) {
  case StaticDepKind::NoDep:
    return "no-dep";
  case StaticDepKind::May:
    return "may";
  case StaticDepKind::MustAddr:
    return "must-addr";
  case StaticDepKind::Must:
    return "must";
  }
  return "<invalid>";
}

DepTester::DepTester(const Program &P, const AliasAnalysis &AA,
                     ContextTable &Contexts)
    : Prog(P), AA(AA), Contexts(Contexts) {
  Facts.resize(P.getNumFunctions());
}

DepTester::FuncFacts &DepTester::factsFor(unsigned Func) const {
  FuncFacts &FF = Facts[Func];
  if (FF.Built)
    return FF;
  FF.Built = true;
  const Function &F = Prog.getFunction(Func);
  CFG G(F);
  Dominators DT(G);
  unsigned N = F.getNumBlocks();
  FF.Reachable.resize(N);
  FF.DominatesAllRets.assign(N, false);
  FF.Dom.assign(N, std::vector<bool>(N, false));
  std::vector<unsigned> RetBlocks;
  for (unsigned B = 0; B < N; ++B) {
    FF.Reachable[B] = G.isReachable(B);
    if (FF.Reachable[B] && !F.getBlock(B).empty() &&
        F.getBlock(B).back().getOpcode() == Opcode::Ret)
      RetBlocks.push_back(B);
  }
  for (unsigned A = 0; A < N; ++A) {
    if (!FF.Reachable[A])
      continue;
    for (unsigned B = 0; B < N; ++B)
      FF.Dom[A][B] = FF.Reachable[B] && DT.dominates(A, B);
    bool All = !RetBlocks.empty();
    for (unsigned RB : RetBlocks)
      All &= FF.Dom[A][RB];
    FF.DominatesAllRets[A] = All;
  }
  return FF;
}

void DepTester::analyzeRegion(DiagEngine *DE) {
  if (Analyzed)
    return;
  Analyzed = true;

  const RegionSpec &Region = Prog.getRegion();
  if (!Region.isValid()) {
    Complete = false;
    if (DE)
      DE->error("dep-tester", "no-region",
                "program has no parallel region annotation");
    return;
  }

  const Function &F = Prog.getFunction(Region.Func);
  CFG G(F);
  Dominators DT(G);
  LoopInfo LI(F, G, DT);
  const Loop *L = LI.getLoopByHeader(Region.Header);
  if (!L) {
    Complete = false;
    if (DE)
      DE->error("dep-tester", "no-region-loop",
                "region header " + F.getBlock(Region.Header).getName() +
                    " heads no natural loop");
    return;
  }

  // A region block must-executes each iteration iff it dominates every
  // latch (every completed iteration passed through it).
  RegionMustExec.assign(F.getNumBlocks(), false);
  for (unsigned B : L->Blocks) {
    bool All = !L->Latches.empty();
    for (unsigned Latch : L->Latches)
      All &= DT.dominates(B, Latch);
    RegionMustExec[B] = All;
  }

  std::vector<unsigned> CallPath;
  walkFunction(Region.Func, ContextTable::RootContext, true, &L->Blocks,
               CallPath, DE);

  std::sort(Refs.begin(), Refs.end(),
            [](const MemRef &A, const MemRef &B) { return A.Name < B.Name; });
}

void DepTester::walkFunction(unsigned Func, uint32_t Context,
                             bool CtxMustExec,
                             const std::vector<unsigned> *RestrictBlocks,
                             std::vector<unsigned> &CallPath, DiagEngine *DE) {
  const Function &F = Prog.getFunction(Func);
  FuncFacts &FF = factsFor(Func);

  std::vector<unsigned> AllBlocks;
  if (!RestrictBlocks) {
    for (unsigned B = 0; B < F.getNumBlocks(); ++B)
      if (FF.Reachable[B])
        AllBlocks.push_back(B);
    RestrictBlocks = &AllBlocks;
  }

  for (unsigned B : *RestrictBlocks) {
    if (!FF.Reachable[B])
      continue;
    bool BlockMust =
        CtxMustExec && (Context == ContextTable::RootContext
                            ? RegionMustExec[B]
                            : FF.DominatesAllRets[B]);
    const BasicBlock &BB = F.getBlock(B);
    for (size_t Pos = 0; Pos < BB.size(); ++Pos) {
      const Instruction &I = BB.instructions()[Pos];
      if (I.getOpcode() == Opcode::Load || I.getOpcode() == Opcode::Store) {
        MemRef R;
        R.Name = RefName{I.getId(), Context};
        R.Func = Func;
        R.Block = B;
        R.Pos = Pos;
        R.IsLoad = I.getOpcode() == Opcode::Load;
        R.MustExec = BlockMust;
        R.Addr = AA.addressOf(Func, I);
        Refs.push_back(std::move(R));
        continue;
      }
      if (I.getOpcode() != Opcode::Call)
        continue;
      unsigned Callee = I.getCallee();
      if (std::find(CallPath.begin(), CallPath.end(), Callee) !=
              CallPath.end() ||
          CallPath.size() >= MaxCallDepth) {
        // Recursion (or absurd depth): references below this call cannot be
        // enumerated with finite contexts. Abandon completeness claims.
        Complete = false;
        if (DE) {
          Diag &D = DE->warning(
              "dep-tester", "recursive-call",
              "call to " + Prog.getFunction(Callee).getName() +
                  " cut off (recursion); region enumeration is incomplete");
          D.Func = Func;
          D.Block = B;
          D.InstId = I.getId();
        }
        continue;
      }
      CallPath.push_back(Callee);
      walkFunction(Callee, Contexts.child(Context, I.getId()),
                   BlockMust, nullptr, CallPath, DE);
      CallPath.pop_back();
    }
  }
}

const MemRef *DepTester::findRef(const RefName &Name) const {
  auto It = std::lower_bound(
      Refs.begin(), Refs.end(), Name,
      [](const MemRef &R, const RefName &N) { return R.Name < N; });
  if (It != Refs.end() && It->Name == Name)
    return &*It;
  return nullptr;
}

bool DepTester::precedes(const MemRef &A, const MemRef &B) const {
  // Ordering is only meaningful within one function activation: same
  // function reached through the same call path.
  if (A.Func != B.Func || A.Name.Context != B.Name.Context)
    return false;
  if (A.Block == B.Block)
    return A.Pos < B.Pos;
  // Block dominance within the iteration: every path that reaches B's block
  // (without re-entering the region header, i.e. within one iteration) has
  // already passed A's block.
  const FuncFacts &FF = factsFor(A.Func);
  return FF.Dom[A.Block][B.Block];
}

StaticDepResult DepTester::classify(const MemRef &Store,
                                    const MemRef &Load) const {
  assert(!Store.IsLoad && Load.IsLoad && "classify expects (store, load)");
  StaticDepResult R;
  AliasResult A = AA.alias(Store.Addr, Load.Addr);
  if (A == AliasResult::NoAlias) {
    R.Kind = StaticDepKind::NoDep;
    return R;
  }
  if (A == AliasResult::MayAlias) {
    R.Kind = StaticDepKind::May;
    return R;
  }
  // Must-alias: one invariant address.
  if (Store.MustExec && precedes(Store, Load)) {
    // The store is executed earlier in *every* iteration that reaches the
    // load, so the load always observes the current epoch's value: the
    // loop-carried (inter-epoch) dependence from this store is impossible.
    R.Kind = StaticDepKind::NoDep;
    return R;
  }
  if (Store.MustExec && Load.MustExec) {
    R.Kind = StaticDepKind::Must;
    // If the load additionally precedes the store within the iteration, the
    // consumed value is always the immediately previous epoch's store.
    R.Distance1 = precedes(Load, Store);
  } else {
    R.Kind = StaticDepKind::MustAddr;
  }
  return R;
}
