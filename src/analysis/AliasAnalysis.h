//===- analysis/AliasAnalysis.h - Points-to / alias analysis ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-insensitive, interprocedural, Andersen-style points-to analysis
/// over SpecSync IR values. The IR has no address-of operator and no heap
/// allocator: every pointer is ultimately a global's base address
/// (an immediate laid out by Program::addGlobal) plus arithmetic, so the
/// abstract objects are exactly the program's globals, summarized per
/// array/field offset.
///
/// The abstract value of a register (or of a memory word) is a ValueInfo:
///  - a set of (global, byte-offset-set) pointer targets, where an offset
///    set is either a small enumerated set or "unknown offset within the
///    global" (array summarization with widening);
///  - a scalar component (known constant set, widened to "unknown scalar");
///  - or Top (any value, including any address).
///
/// Registers are merged over all their definitions (flow-insensitive, as in
/// Andersen's analysis); calls propagate argument values into parameters
/// and return operands into call destinations; stores merge the stored
/// value into the summarized contents of every global the address may
/// reference, and loads read those contents back — so pointers that travel
/// through memory (free lists, work queues) are tracked.
///
/// Soundness caveat (documented, standard for named-object analyses): an
/// address formed as `global + index` is assumed to stay within that
/// global's allocation. Out-of-bounds arithmetic that lands in a *different*
/// global would not be seen — acceptable here because the engine's strong
/// verdicts are cross-checked against the dynamic dependence profile.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_ALIASANALYSIS_H
#define SPECSYNC_ANALYSIS_ALIASANALYSIS_H

#include "ir/Program.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace specsync {
namespace analysis {

/// Byte offsets of a pointer within one global: a small enumerated set,
/// widened to Unknown ("anywhere in the global") past MaxEnumerated.
struct OffsetSet {
  static constexpr size_t MaxEnumerated = 64;

  bool Unknown = false;
  std::set<int64_t> Offsets; ///< Meaningful only when !Unknown.

  /// Union-in; returns true if this set changed.
  bool join(const OffsetSet &RHS);
  bool insert(int64_t Off);
  void widen() {
    Unknown = true;
    Offsets.clear();
  }
  bool operator==(const OffsetSet &RHS) const {
    return Unknown == RHS.Unknown && Offsets == RHS.Offsets;
  }
};

/// The abstract value lattice element (see file comment).
struct ValueInfo {
  static constexpr size_t MaxScalarConsts = 16;

  bool Top = false;       ///< Any value, including any address.
  bool ScalarTop = false; ///< Any non-pointer value.
  std::set<int64_t> ScalarConsts;     ///< Known possible scalar constants.
  std::map<unsigned, OffsetSet> Ptrs; ///< Global index -> byte offsets.

  bool isBottom() const {
    return !Top && !ScalarTop && ScalarConsts.empty() && Ptrs.empty();
  }
  bool mayBePointer() const { return Top || !Ptrs.empty(); }
  bool mayBeScalar() const {
    return Top || ScalarTop || !ScalarConsts.empty();
  }

  /// Union-in; returns true if this value changed.
  bool join(const ValueInfo &RHS);
  void setTop() {
    Top = true;
    ScalarTop = false;
    ScalarConsts.clear();
    Ptrs.clear();
  }
  void addScalarConst(int64_t V);
  bool operator==(const ValueInfo &RHS) const {
    return Top == RHS.Top && ScalarTop == RHS.ScalarTop &&
           ScalarConsts == RHS.ScalarConsts && Ptrs == RHS.Ptrs;
  }
  bool operator!=(const ValueInfo &RHS) const { return !(*this == RHS); }
};

enum class AliasResult { NoAlias, MayAlias, MustAlias };

const char *aliasResultName(AliasResult R);

/// A memory address abstracted for alias queries: pointer targets by
/// global, plus exact raw word addresses that fall outside every global
/// (possible only in hand-built test programs), plus an "anything" flag.
struct AddrInfo {
  bool Unknown = false;               ///< May be any address.
  std::map<unsigned, OffsetSet> ByGlobal;
  std::set<int64_t> RawAddrs;         ///< Absolute addrs outside all globals.

  /// True when the address is provably the same single word on every
  /// execution (a singleton target).
  bool isSingleton() const;

  /// Renders e.g. "potential[+8]", "arcs[*]", "{out[+24],out[+32]}", "?".
  std::string render(const Program &P) const;
};

/// The analysis: construct, run once, then query.
class AliasAnalysis {
public:
  explicit AliasAnalysis(const Program &P);

  /// Runs the fixpoint. Idempotent.
  void run();

  /// Abstract value of register \p Reg of function \p Func.
  const ValueInfo &valueOf(unsigned Func, unsigned Reg) const;

  /// Summarized contents of global \p G's words.
  const ValueInfo &contentsOf(unsigned G) const;

  /// The address abstraction of a Load/Store instruction's address operand.
  AddrInfo addressOf(unsigned Func, const Instruction &I) const;

  /// Classifies two addresses. Accesses are 8-byte words.
  AliasResult alias(const AddrInfo &A, const AddrInfo &B) const;

  /// Number of fixpoint passes the solver took (introspection / stats).
  unsigned numIterations() const { return Iterations; }

  /// Renders one value (for alias-set dumps).
  std::string renderValue(const ValueInfo &V) const;

private:
  ValueInfo evalOperand(unsigned Func, const Operand &Op) const;
  ValueInfo classifyConstant(int64_t C) const;
  AddrInfo toAddr(const ValueInfo &V) const;
  bool transfer(unsigned Func, const Instruction &I);
  bool storeTo(const AddrInfo &Addr, const ValueInfo &Val);
  ValueInfo loadFrom(const AddrInfo &Addr) const;

  const Program &Prog;
  std::vector<std::vector<ValueInfo>> Regs; ///< [func][reg].
  std::vector<ValueInfo> Returns;           ///< [func]: joined Ret values.
  std::vector<ValueInfo> Contents;          ///< [global index].
  ValueInfo OutOfRangeContents; ///< Words outside every global (raw addrs).
  bool Ran = false;
  unsigned Iterations = 0;
};

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_ALIASANALYSIS_H
