//===- analysis/StaticAnalysis.h - Engine façade + options ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles the static-analysis engine (alias analysis + dependence tester +
/// oracle) behind one object with a single policy knob set, so the harness
/// pipeline and the example tools drive it identically, plus the
/// command-line/environment parsing for the engine's flags:
///
///   --static-oracle      enable the DepOracle (fuse static results into
///                        sync grouping; default off — the compiled
///                        binaries are then bit-identical to a pipeline
///                        without the analysis subsystem)
///   --static-remedies    enable the remediator chain (analysis/Remediator):
///                        build a RemedyPlan per workload and apply its
///                        transforms (privatization, padding, reduction
///                        expansion) to the compiled binaries
///   --audit-no-werror    demote signal-placement audit errors from a hard
///                        stop to printed diagnostics (default: strict)
///   --static-stale-demo  append a synthetic stale entry to each dependence
///                        profile before fusion, demonstrating (and
///                        regression-testing) IMPOSSIBLE pruning
///
/// Environment fallbacks: SPECSYNC_STATIC_ORACLE=1,
/// SPECSYNC_STATIC_REMEDIES=1, SPECSYNC_AUDIT_NO_WERROR=1,
/// SPECSYNC_STATIC_STALE_DEMO=1.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_STATICANALYSIS_H
#define SPECSYNC_ANALYSIS_STATICANALYSIS_H

#include "analysis/DepOracle.h"
#include "analysis/Diag.h"

#include <memory>

namespace specsync {
namespace analysis {

struct StaticAnalysisOptions {
  /// Fuse static dependence results into the sync grouping. Off by default:
  /// the paper's profile-only pipeline is the baseline configuration.
  bool EnableOracle = false;
  /// Build a remediator plan (analysis/Remediator) and apply its transforms
  /// to the compiled binaries. Off by default: remedies-off output is
  /// byte-identical to a pipeline without the subsystem.
  bool EnableRemedies = false;
  /// Treat signal-placement audit errors as fatal (CI-strict default).
  bool AuditWerror = true;
  /// Stale-profile simulation: append one synthetic profile entry naming a
  /// nonexistent reference, to exercise IMPOSSIBLE pruning end to end.
  /// Only meaningful with EnableOracle (an unpruned stale entry would trip
  /// MemSync's profile-name assert by design).
  bool InjectStalePair = false;

  bool active() const { return EnableOracle || EnableRemedies; }
};

/// Parses the flags above from \p argv (non-destructive; unknown flags are
/// left for other parsers, matching the obs/robustness flag style).
StaticAnalysisOptions parseStaticAnalysisArgs(int argc, char **argv);

/// One engine instance: owns the alias analysis and dependence tester for
/// one (base-transformed) program and answers oracle fusions against any
/// number of profiles.
class StaticAnalysisEngine {
public:
  /// \p Contexts must be the table shared with the profiler runs; \p P must
  /// be base-transformed identically to the profiled binaries so static ids
  /// agree, and must outlive the engine.
  StaticAnalysisEngine(const Program &P, ContextTable &Contexts);
  ~StaticAnalysisEngine();

  /// Runs points-to analysis and region enumeration. Idempotent.
  void analyze();

  /// Fuses the engine's static results against \p Profile; pruning and
  /// forcing findings land in diags().
  DepOracleResult fuse(const DepProfile &Profile, double ThresholdPercent);

  const AliasAnalysis &alias() const { return *AA; }
  const DepTester &tester() const { return *Tester; }
  const Program &program() const { return Prog; }
  DiagEngine &diags() { return Diags; }
  const DiagEngine &diags() const { return Diags; }

private:
  const Program &Prog;
  std::unique_ptr<AliasAnalysis> AA;
  std::unique_ptr<DepTester> Tester;
  DiagEngine Diags;
  bool Analyzed = false;
};

/// Appends the stale-profile-simulation entry: a dependence pair whose
/// instruction ids exist in no program (the id space is dense from 1).
/// Mimics a profile gathered on a different build of the workload.
void appendStaleProfilePair(DepProfile &Profile);

/// Bridges ir/Verifier findings into structured diagnostics: each verifier
/// error string becomes a Diag error in pass "verifier".
void verifyProgramToDiags(const Program &P, DiagEngine &DE);

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_STATICANALYSIS_H
