//===- analysis/DepOracle.h - Static/profile dependence fusion --*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DepOracle fuses the static dependence tester's results with the
/// dynamic dependence profile into one verdict per (store, load) pair:
///
///  - MUST_SYNC:  synchronize. Either the profile says the dependence is
///                frequent and the static analysis does not refute it
///                (static-confirmed), or the static analysis proves a
///                loop-carried same-address dependence the profile missed
///                or left under the frequency threshold (static-forced).
///  - IMPOSSIBLE: the profile entry is statically refuted — the addresses
///                cannot overlap, the store provably kills the dependence
///                within the epoch, or (when the static enumeration is
///                complete) the reference does not exist in the region at
///                all. Pruned from grouping and reported; this is the
///                defense against stale or corrupted profiles.
///  - SPECULATE:  a may-dependence below the threshold: left to hardware.
///
/// A sound profiler on the same binary never produces refutable entries, so
/// IMPOSSIBLE verdicts specifically flag profile staleness/corruption; the
/// counters (static-confirmed / static-pruned / static-forced) quantify
/// profile-vs-static agreement per region.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_DEPORACLE_H
#define SPECSYNC_ANALYSIS_DEPORACLE_H

#include "analysis/DepTester.h"

#include <set>
#include <string>
#include <vector>

namespace specsync {

namespace obs {
class JsonWriter;
} // namespace obs

namespace analysis {

class DiagEngine;

enum class DepVerdict : uint8_t { MustSync, Speculate, Impossible };

const char *depVerdictName(DepVerdict V);

/// One row of the verdict table.
struct OracleEntry {
  RefName Load;
  RefName Store;
  DepVerdict Verdict = DepVerdict::Speculate;
  StaticDepKind Static = StaticDepKind::May;
  bool InProfile = false;   ///< The pair appears in the dynamic profile.
  double FreqPercent = 0.0; ///< Profile frequency (0 when absent).
  /// 95% confidence bounds on FreqPercent. Equal to FreqPercent for exact
  /// profiles; for sampled profiles the frequency threshold is applied to
  /// FreqLowPercent, so syncs are only inserted with confidence.
  double FreqLowPercent = 0.0;
  double FreqHighPercent = 0.0;
  bool Forced = false;      ///< MUST_SYNC forced by static proof alone.
  bool Pruned = false;      ///< Profile entry statically refuted.
  bool Distance1 = false;   ///< Static distance-1 proof.
  std::string Reason;       ///< Stable reason tag, e.g. "statically-refuted".
};

/// The fused verdict table plus agreement counters.
struct DepOracleResult {
  std::vector<OracleEntry> Entries;
  double ThresholdPercent = 0.0;
  /// Sampling provenance of the fused profile: when true, FreqPercent is a
  /// sampled estimate over SampledEpochs of TotalEpochs observed epochs
  /// and verdicts used the lower confidence bound.
  bool ProfileSampled = false;
  uint64_t ProfileSampleEvery = 1;
  uint64_t ProfileSampledEpochs = 0;
  uint64_t ProfileTotalEpochs = 0;
  bool Complete = false;       ///< Static enumeration covered the region.
  unsigned NumRefs = 0;        ///< Region memory references enumerated.
  unsigned StaticConfirmed = 0; ///< Frequent profile pairs kept.
  unsigned StaticPruned = 0;    ///< Profile entries refuted.
  unsigned StaticForced = 0;    ///< MUST_SYNC pairs the profile missed.
  unsigned Speculated = 0;      ///< Pairs left to hardware.

  /// True if the (load, store) profile pair was refuted.
  bool isPruned(const RefName &Load, const RefName &Store) const {
    return PrunedPairs.count({Load, Store}) != 0;
  }

  /// Synthetic pair stats for the statically-forced MUST_SYNC pairs, for
  /// splicing into DepGraph grouping alongside the frequent profile pairs.
  std::vector<DepPairStat> forcedPairs() const;

  /// Serializes the full verdict table + counters ("static_analysis" block
  /// body: the caller opens/closes the enclosing object key).
  void writeJson(obs::JsonWriter &W) const;

  std::set<std::pair<RefName, RefName>> PrunedPairs; ///< (load, store).
};

/// Fuses static and dynamic dependence information (see file comment).
class DepOracle {
public:
  /// \p T must have analyzeRegion() already run.
  explicit DepOracle(const DepTester &T) : Tester(T) {}

  /// Fuses against \p Profile at the compiler's frequency threshold.
  /// Verdict-table rows cover every profile pair plus every statically
  /// proven (Must/MustAddr) pair. Diagnostics for pruned entries go to
  /// \p DE if given.
  DepOracleResult fuse(const DepProfile &Profile, double ThresholdPercent,
                       DiagEngine *DE = nullptr) const;

private:
  const DepTester &Tester;
};

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_DEPORACLE_H
