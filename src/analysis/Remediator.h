//===- analysis/Remediator.h - Dependence-remediator ensemble ---*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SCAF-style remediator ensemble: instead of the single yes/no question
/// "is there a loop-carried dependence from this store to this load?", each
/// module of an ordered chain answers the richer question "is there NO
/// dependence, *given this remedy at this cost*?". A plain refutation is a
/// verdict with RemedyKind::None at cost 0; weaker modules buy their
/// refutation with a transform (privatization, padding, reduction
/// expansion) or with profile-backed speculation.
///
/// The chain, in order:
///   1. alias-line  — Andersen points-to: the addresses cannot overlap.
///   2. kill        — the store must-executes and dominates the load within
///                    every iteration (intra-epoch kill).
///   3. readonly    — the load reads only data no region store can write.
///   4. reduction   — the pair is the self-dependence of an `x = x op e`
///                    chain; remedy: per-epoch partial accumulator folded
///                    at in-order commit (RemedyKind::Reduce).
///   5. shortlived  — the location is epoch-local (every read is dominated
///                    by a same-epoch store); remedy: privatize its stores
///                    (RemedyKind::Privatize).
///   6. residue     — known-bits over the address computations prove the
///                    accesses word-disjoint; if they may still share a
///                    cache line, remedy: pad the words onto private
///                    conflict granules (RemedyKind::Pad).
///   7. profile     — LAMP-style: the dependence occurs in at most the
///                    threshold fraction of profiled epochs; remedy: leave
///                    it to the TLS hardware (RemedyKind::Speculate) at the
///                    expected squash cost.
///
/// The chain front-end memoizes verdicts on (store, load, budget); the
/// parallelized region is a property of the whole Program here, so it is an
/// implicit key component. A cost model (RemedyCost) selects the cheapest
/// adequate remedy per pair against the default alternative (sync stall for
/// frequent pairs, expected squash cost otherwise), and buildRemedyPlan
/// turns the per-pair decisions into one executable RemedyPlan: stores to
/// privatize, load/op/store triples to rewrite into Reduce, a PadSet of
/// words granted private conflict granules, and the set of pairs excluded
/// from MemSync grouping.
///
/// Soundness gate: the dynamic dependence profiler is word-exact ground
/// truth, so a pair it observed may only receive Sync, Speculate or Reduce
/// — a module claiming word-disjointness (None, Privatize, Pad) against an
/// observed dependence indicates a stale profile and the verdict is
/// discarded (and counted) rather than applied.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_REMEDIATOR_H
#define SPECSYNC_ANALYSIS_REMEDIATOR_H

#include "analysis/DepTester.h"
#include "ir/Remedy.h"
#include "sim/ConflictRules.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace specsync {

namespace obs {
class JsonWriter;
} // namespace obs

namespace analysis {

class DiagEngine;

/// Everything the chain modules share. All referenced objects must outlive
/// the chain; \p Tester must have analyzeRegion() already run.
struct RemedyContext {
  const Program &Prog;
  const AliasAnalysis &AA;
  const DepTester &Tester;
  /// Dynamic dependence profile feeding the LAMP-style module and the cost
  /// model; may be null (the profile module then never answers).
  const DepProfile *Profile = nullptr;
  /// The compiler's sync frequency threshold, in percent of epochs.
  double ThresholdPercent = 5.0;
  /// log2 of the conflict-detection line size (for the residue module's
  /// line-disjointness reasoning and PadSet construction).
  unsigned LineShift = 5;
};

/// The deterministic cost model remedies compete under. Units are abstract
/// "overhead points" per epoch; only the ordering matters.
struct RemedyCost {
  static constexpr unsigned Pad = 1;       ///< Bigger footprint only.
  static constexpr unsigned Privatize = 2; ///< Private copy + commit merge.
  static constexpr unsigned Reduce = 2;    ///< Accumulator + commit fold.

  /// Modeled cost of memory-resident synchronization for a pair occurring
  /// in \p FreqPercent of epochs: the consumer stalls until the producer
  /// signals, roughly scaling with how often the dependence is live.
  static unsigned sync(double FreqPercent) {
    return 4 + static_cast<unsigned>(FreqPercent / 4.0);
  }
  /// Modeled expected cost of leaving the pair to speculation: squashes
  /// are expensive, so this grows steeply with frequency. The floor keeps
  /// cheap transforms (Pad/Privatize) adequate for pairs the word-exact
  /// profile cannot see at all (pure false sharing has frequency 0).
  static unsigned speculate(double FreqPercent) {
    return 2 + static_cast<unsigned>(3.0 * FreqPercent);
  }
  /// The budget a remedy must beat for a pair: the cheaper of the two
  /// default actions the compiler could take instead.
  static unsigned budget(double FreqPercent) {
    return std::min(sync(FreqPercent), speculate(FreqPercent));
  }
};

/// One (store, load) question posed to the chain.
struct RemedyQuery {
  const MemRef *Store = nullptr; ///< Enumerated region store reference.
  const MemRef *Load = nullptr;  ///< Enumerated region load reference.
  bool InProfile = false;        ///< The profiler observed this pair.
  double FreqPercent = 0.0;      ///< Profile frequency (0 when absent).
  unsigned Budget = ~0u;         ///< Max acceptable remedy cost.
};

/// A reduction-expansion rewrite: the matched load / binop / store triple
/// (original static ids) and the reduction operator.
struct ReductionRewrite {
  uint32_t LoadId = 0;
  uint32_t OpId = 0;
  uint32_t StoreId = 0;
  ReduceOpKind Op = ReduceOpKind::Add;
};

/// One module's answer. NoDep=false means "no answer" (the module cannot
/// refute the pair); NoDep=true means the dependence is refuted provided
/// Remedy is applied at Cost.
struct RemedyVerdict {
  bool NoDep = false;
  RemedyKind Remedy = RemedyKind::None;
  unsigned Cost = 0;
  std::string Module;
  std::string Detail;

  // Remedy payloads, filled by the granting module.
  std::vector<uint32_t> PrivatizeStoreIds; ///< Privatize: stores to mark.
  std::vector<std::pair<uint64_t, uint64_t>> PadRanges; ///< Pad: byte ranges.
  /// Reduce: every triple of the location's reduction chain (unrolled loop
  /// copies contribute one triple each; all must be rewritten together).
  std::vector<ReductionRewrite> Reductions;
};

/// Chain-module interface: a named oracle answering remedy queries.
class Remediator {
public:
  virtual ~Remediator() = default;
  virtual const char *name() const = 0;
  /// Fills \p V and returns true when the module refutes the pair (V.NoDep
  /// set, remedy + cost attached). Returning false leaves V untouched.
  virtual bool answer(const RemedyQuery &Q, RemedyVerdict &V) = 0;
};

/// The ordered ensemble plus the memoizing front-end.
class RemedyChain {
public:
  explicit RemedyChain(const RemedyContext &Ctx);
  ~RemedyChain();

  /// The cheapest adequate verdict (Cost <= Q.Budget) across all modules;
  /// ties go to the earlier module. Returns a NoDep=false verdict when no
  /// module answers within budget. Memoized on (store, load, budget) — the
  /// region is per-Program and thus an implicit key component.
  RemedyVerdict query(const RemedyQuery &Q);

  /// Every module's independent answer in chain order (non-answers have
  /// NoDep=false and Detail "no answer"). Not memoized; this is the
  /// introspection path behind `examples/static_deps`.
  std::vector<RemedyVerdict> queryAll(const RemedyQuery &Q);

  uint64_t cacheLookups() const { return Lookups; }
  uint64_t cacheHits() const { return Hits; }

  /// Epoch-locality proof shared with plan building: when location
  /// \p Addr (a singleton address abstraction) is provably epoch-local —
  /// every region load that may read it is dominated by a same-epoch
  /// must-alias store — returns true and appends the static ids of its
  /// (singleton-addressed) stores to \p StoreIds.
  bool proveEpochLocal(const AddrInfo &Addr, std::vector<uint32_t> &StoreIds);

private:
  const RemedyContext &Ctx;
  std::vector<std::unique_ptr<Remediator>> Modules;
  using Key = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, unsigned>;
  std::map<Key, RemedyVerdict> Memo;
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
};

/// One row of the plan: what the compiler decided for one pair.
struct RemedyDecision {
  RefName Load;
  RefName Store;
  bool InProfile = false;
  double FreqPercent = 0.0;
  RemedyKind Remedy = RemedyKind::Sync;
  unsigned Cost = 0;
  unsigned SyncCost = 0; ///< The modeled sync alternative, for comparison.
  std::string Module;    ///< Granting chain module ("" for defaults).
  std::string Detail;
};

/// The executable remedy plan for one (program, profile) pair.
struct RemedyPlan {
  bool Enabled = false;

  std::vector<RemedyDecision> Decisions; ///< Sorted by (load, store).
  /// Pairs excluded from MemSync grouping because a remedy replaced
  /// synchronization, keyed (load, store) like the profile.
  std::set<std::pair<RefName, RefName>> RemediedPairs;
  /// Static ids of stores to mark RemedyKind::Privatize (matched by id or
  /// original id, so post-MemSync clones are covered).
  std::set<uint32_t> PrivatizedStores;
  /// Load/op/store triples to rewrite into Reduce instructions.
  std::vector<ReductionRewrite> Reductions;
  /// Words granted private conflict granules (the Pad remedy). Backends
  /// hold pointers into this set; it must outlive every run using it.
  conflict::PadSet Pads;

  unsigned NumSynced = 0;     ///< Pairs left to memory-resident sync.
  unsigned NumSpeculated = 0; ///< Pairs left to hardware speculation.
  unsigned NumPrivatized = 0; ///< Pairs remedied by privatization.
  unsigned NumPadded = 0;     ///< Pairs remedied by padding.
  unsigned NumReduced = 0;    ///< Pairs remedied by reduction expansion.
  /// Soundness-gate hits: verdicts claiming word-disjointness against a
  /// profiler-observed dependence (stale profile); discarded, not applied.
  unsigned GateRejected = 0;
  uint64_t CacheLookups = 0;
  uint64_t CacheHits = 0;

  bool isRemedied(const RefName &Load, const RefName &Store) const {
    return RemediedPairs.count({Load, Store}) != 0;
  }

  /// True when the plan changes any binary or any conflict granule.
  bool transforms() const {
    return !PrivatizedStores.empty() || !Reductions.empty() || !Pads.empty();
  }

  /// Serializes the "remedies" report block body (the caller opens/closes
  /// the enclosing object key). Schema: docs/REPORT_SCHEMA.md.
  void writeJson(obs::JsonWriter &W) const;
};

/// Runs the chain over every candidate pair — all profile pairs plus the
/// full (store, load) cross product of the enumerated region references
/// (false-sharing pairs are invisible to the word-exact profile) — plus a
/// per-location privatization sweep, and assembles the cheapest-adequate
/// decisions into one plan. Gate findings go to \p DE if given.
RemedyPlan buildRemedyPlan(const RemedyContext &Ctx, DiagEngine *DE = nullptr);

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_REMEDIATOR_H
