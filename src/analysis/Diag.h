//===- analysis/Diag.h - Structured analysis diagnostics --------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured diagnostics layer shared by the static-analysis engine,
/// the IR verifier and the signal-placement audit. A Diag is a lint
/// finding, not an assert: it carries a severity, the emitting pass, an IR
/// location (function / block / static instruction id where known) and a
/// stable machine-readable code, and renders both as compiler-style text
/// (`pass: severity: message [code] at func:block`) and as JSON inside the
/// report's `static_analysis` block.
///
/// DiagEngine collects findings; the caller decides the policy (a
/// --werror-style flag promotes errors to a hard stop, the default for CI).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_DIAG_H
#define SPECSYNC_ANALYSIS_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace specsync {

class Program;

namespace obs {
class JsonWriter;
} // namespace obs

namespace analysis {

enum class DiagSeverity : uint8_t { Note, Warning, Error };

const char *diagSeverityName(DiagSeverity S);

/// One finding. Location fields are optional; ~0u / 0 mean "not attached to
/// a specific function / block / instruction".
struct Diag {
  DiagSeverity Severity = DiagSeverity::Warning;
  std::string Pass;    ///< Emitting pass, e.g. "signal-audit", "dep-oracle".
  std::string Code;    ///< Stable machine-readable code, e.g. "missing-null-signal".
  std::string Message; ///< Human-readable one-liner.
  unsigned Func = ~0u;   ///< Function index, or ~0u.
  unsigned Block = ~0u;  ///< Block index within Func, or ~0u.
  uint32_t InstId = 0;   ///< Program-unique static id, or 0.

  /// `pass: severity: message [code] (at func:block, inst #id)`.
  std::string render(const Program *P = nullptr) const;
};

/// Collects diagnostics from one or more passes. Not thread-safe (the
/// compiler pipeline is single-threaded).
class DiagEngine {
public:
  /// Builder-style emission helpers.
  Diag &report(DiagSeverity Severity, std::string Pass, std::string Code,
               std::string Message);
  Diag &error(std::string Pass, std::string Code, std::string Message) {
    return report(DiagSeverity::Error, std::move(Pass), std::move(Code),
                  std::move(Message));
  }
  Diag &warning(std::string Pass, std::string Code, std::string Message) {
    return report(DiagSeverity::Warning, std::move(Pass), std::move(Code),
                  std::move(Message));
  }
  Diag &note(std::string Pass, std::string Code, std::string Message) {
    return report(DiagSeverity::Note, std::move(Pass), std::move(Code),
                  std::move(Message));
  }

  const std::vector<Diag> &diags() const { return Diags; }
  size_t numErrors() const { return NumErrors; }
  size_t numWarnings() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors > 0; }

  void clear();

  /// Appends every finding of \p Other (the pipeline aggregates the
  /// engine's findings with the audit's and the verifier's this way).
  void merge(const DiagEngine &Other);

  /// Renders every finding, one per line (worst severity first, stable
  /// within a severity). \p P resolves instruction ids to source locators.
  std::string renderAll(const Program *P = nullptr) const;

  /// Serializes the findings as a JSON array of objects.
  void writeJson(obs::JsonWriter &W) const;

private:
  std::vector<Diag> Diags;
  size_t NumErrors = 0;
  size_t NumWarnings = 0;
};

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_DIAG_H
