//===- analysis/StaticAnalysis.cpp ------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include "ir/Verifier.h"

#include <cstdlib>
#include <cstring>

using namespace specsync;
using namespace specsync::analysis;

StaticAnalysisOptions analysis::parseStaticAnalysisArgs(int argc,
                                                        char **argv) {
  StaticAnalysisOptions O;
  auto EnvSet = [](const char *Name) {
    const char *E = std::getenv(Name);
    return E && E[0] && std::strcmp(E, "0") != 0;
  };
  if (EnvSet("SPECSYNC_STATIC_ORACLE"))
    O.EnableOracle = true;
  if (EnvSet("SPECSYNC_STATIC_REMEDIES"))
    O.EnableRemedies = true;
  if (EnvSet("SPECSYNC_AUDIT_NO_WERROR"))
    O.AuditWerror = false;
  if (EnvSet("SPECSYNC_STATIC_STALE_DEMO"))
    O.InjectStalePair = true;
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--static-oracle") == 0)
      O.EnableOracle = true;
    else if (std::strcmp(A, "--static-remedies") == 0)
      O.EnableRemedies = true;
    else if (std::strcmp(A, "--audit-no-werror") == 0)
      O.AuditWerror = false;
    else if (std::strcmp(A, "--static-stale-demo") == 0)
      O.InjectStalePair = true;
  }
  return O;
}

StaticAnalysisEngine::StaticAnalysisEngine(const Program &P,
                                           ContextTable &Contexts)
    : Prog(P), AA(std::make_unique<AliasAnalysis>(P)),
      Tester(std::make_unique<DepTester>(P, *AA, Contexts)) {}

StaticAnalysisEngine::~StaticAnalysisEngine() = default;

void StaticAnalysisEngine::analyze() {
  if (Analyzed)
    return;
  Analyzed = true;
  AA->run();
  Tester->analyzeRegion(&Diags);
}

DepOracleResult StaticAnalysisEngine::fuse(const DepProfile &Profile,
                                           double ThresholdPercent) {
  DepOracle Oracle(*Tester);
  return Oracle.fuse(Profile, ThresholdPercent, &Diags);
}

void analysis::appendStaleProfilePair(DepProfile &Profile) {
  // Ids far above any program's dense id space, so the pair can never name
  // a real reference; the oracle must refute it as "ref-not-in-region".
  RefName StaleLoad{0x7FFFFFF0u, 0};
  RefName StaleStore{0x7FFFFFF1u, 0};
  DepPairStat P;
  P.Load = StaleLoad;
  P.Store = StaleStore;
  P.Count = Profile.TotalEpochs ? Profile.TotalEpochs : 1;
  P.EpochsWithDep = P.Count; // Reads as a 100%-frequent dependence.
  P.Distance1Count = P.Count;
  Profile.Pairs[{StaleLoad, StaleStore}] = P;
}

void analysis::verifyProgramToDiags(const Program &P, DiagEngine &DE) {
  for (const std::string &Problem : verifyProgram(P))
    DE.error("verifier", "ir-invariant", Problem);
}
