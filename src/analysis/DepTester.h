//===- analysis/DepTester.h - Loop-carried dependence testing ---*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop-carried may/must-dependence tester for the parallelized region.
///
/// It enumerates every memory reference (Load/Store) the region can execute
/// — the loop body of the selected region plus every function reachable
/// through its call sites, each named by the same (static id, call-path
/// context) scheme the dynamic profiler uses, so static and dynamic
/// reference names line up exactly — and classifies each (store, load) pair:
///
///  - NoDep:    the addresses cannot overlap (alias analysis), or the store
///              provably executes before the load within every iteration so
///              the load can never observe a *previous* epoch's store.
///  - May:      the addresses may overlap; nothing stronger is provable.
///  - MustAddr: same single address on every execution (the flow-insensitive
///              value is a singleton, hence loop-invariant — the
///              "value-numbered address expression" proof), but at least one
///              side executes only conditionally.
///  - Must:     same single address AND both sides execute on every
///              iteration: the loop-carried dependence is certain. When the
///              load also provably precedes the store within the iteration,
///              the dependence distance is exactly 1.
///
/// Must-execution is dominance-based: a region block must-executes if it
/// dominates every latch of the region loop; a callee block must-executes
/// if its call site does and it dominates every reachable Ret block.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_ANALYSIS_DEPTESTER_H
#define SPECSYNC_ANALYSIS_DEPTESTER_H

#include "analysis/AliasAnalysis.h"
#include "interp/ContextTable.h"
#include "profile/DepProfiler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace specsync {
namespace analysis {

class DiagEngine;

/// One memory reference the region can execute.
struct MemRef {
  RefName Name;          ///< Same naming scheme as the dynamic profile.
  unsigned Func = ~0u;   ///< Enclosing function index.
  unsigned Block = ~0u;  ///< Enclosing block index.
  size_t Pos = 0;        ///< Position within the block.
  bool IsLoad = false;
  bool MustExec = false; ///< Executes on every region iteration.
  AddrInfo Addr;
};

enum class StaticDepKind : uint8_t { NoDep, May, MustAddr, Must };

const char *staticDepKindName(StaticDepKind K);

/// Classification of one (store, load) pair.
struct StaticDepResult {
  StaticDepKind Kind = StaticDepKind::May;
  bool Distance1 = false; ///< Distance provably exactly 1 (Must pairs only).
};

/// The enumerated region references plus classification queries.
class DepTester {
public:
  /// \p Contexts must be the table shared with the profiler runs so context
  /// ids agree. \p AA must have been run on the same (base-transformed)
  /// program the profile ids refer to.
  DepTester(const Program &P, const AliasAnalysis &AA, ContextTable &Contexts);

  /// Walks the region and enumerates its memory references. Emits
  /// diagnostics (recursion cuts, missing region/loop) to \p DE if given.
  void analyzeRegion(DiagEngine *DE = nullptr);

  const std::vector<MemRef> &refs() const { return Refs; }

  /// True when the enumeration provably covers every reference the region
  /// can execute (no recursion cut-offs); only then can a profile entry
  /// with an unknown name be declared statically impossible.
  bool isComplete() const { return Complete; }

  /// Looks up an enumerated reference by profile name, or nullptr.
  const MemRef *findRef(const RefName &Name) const;

  /// Classifies the loop-carried dependence from \p Store to \p Load.
  StaticDepResult classify(const MemRef &Store, const MemRef &Load) const;

private:
  void walkFunction(unsigned Func, uint32_t Context, bool CtxMustExec,
                    const std::vector<unsigned> *RestrictBlocks,
                    std::vector<unsigned> &CallPath, DiagEngine *DE);

  /// True if \p A provably executes before \p B within a single iteration
  /// (same function + context, dominance + block position).
  bool precedes(const MemRef &A, const MemRef &B) const;

  const Program &Prog;
  const AliasAnalysis &AA;
  ContextTable &Contexts;
  std::vector<MemRef> Refs;
  bool Complete = true;
  bool Analyzed = false;

  /// Per-function cached dominator facts, built lazily during the walk.
  struct FuncFacts {
    bool Built = false;
    std::vector<bool> Reachable;       ///< By block.
    std::vector<bool> DominatesAllRets; ///< By block (callee must-exec).
    std::vector<std::vector<bool>> Dom; ///< Dom[A][B]: A dominates B.
  };
  FuncFacts &factsFor(unsigned Func) const;
  mutable std::vector<FuncFacts> Facts; ///< Lazily built dominator cache.
  std::vector<bool> RegionMustExec; ///< By region-func block index.
};

} // namespace analysis
} // namespace specsync

#endif // SPECSYNC_ANALYSIS_DEPTESTER_H
