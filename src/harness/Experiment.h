//===- harness/Experiment.h - Execution modes and results ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution modes used throughout the paper's evaluation and the
/// per-mode result record the benchmark binaries produce. See DESIGN.md
/// Section 4 for the mode glossary.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_EXPERIMENT_H
#define SPECSYNC_HARNESS_EXPERIMENT_H

#include "obs/CriticalPath.h"
#include "obs/SquashAttribution.h"
#include "sim/TLSSimulator.h"

#include <memory>
#include <string>

namespace specsync {

enum class ExecMode {
  U, ///< TLS with scalar sync only (baseline parallel execution).
  O, ///< Oracle: perfect memory value communication (Figure 2).
  T, ///< Compiler memory sync, profiled on the train input (Figure 8).
  C, ///< Compiler memory sync, profiled on the ref input.
  E, ///< C with perfectly predicted synchronized values (Figure 9).
  L, ///< C with synchronized loads stalling to commit (Figure 9).
  P, ///< Hardware value prediction (Figure 10).
  H, ///< Hardware-inserted synchronization (Figure 10).
  B, ///< Hybrid: compiler sync + hardware sync (Figures 10-12).
};

const char *modeName(ExecMode Mode);

/// Event-ledger analyses for one run (benchmark x mode), produced by the
/// pipeline when the EventLog is active. RawSim accumulates the simulator's
/// per-region attempt results *before* degraded regions are replaced by the
/// sequential fallback — the ledger recorded the parallel attempts, so that
/// is the accumulation the stream must reconcile with.
struct ForensicsResult {
  uint64_t EventCount = 0;     ///< Live records of this run's slice.
  uint64_t DroppedEvents = 0;  ///< Records recycled out of the ring mid-run.
  obs::SquashAttributionResult Attribution;
  obs::CriticalPathResult CriticalPath;
  TLSSimResult RawSim;

  /// Exact reconciliation of the attribution totals against RawSim's
  /// aggregate counters. Only meaningful on a complete stream: with
  /// DroppedEvents != 0 this returns false with \p Why = "dropped".
  bool reconciles(std::string *Why = nullptr) const;
};

/// One mode's measurement for one benchmark.
struct ModeRunResult {
  ExecMode Mode = ExecMode::U;
  TLSSimResult Sim; ///< Accumulated over all region instances.

  uint64_t SeqRegionCycles = 0; ///< Sequential baseline for the regions.

  /// Region execution time normalized to sequential (the paper's bars;
  /// < 100 means the parallelized regions sped up).
  double normalizedRegionTime() const;
  /// The four bar segments in normalized units (sum = the bar height).
  double busyPct() const;
  double failPct() const;
  double syncPct() const;
  double otherPct() const;

  double regionSpeedup() const;

  /// Whole-program numbers (coverage + sequential dilation applied).
  double ProgramSpeedup = 0.0;
  double CoveragePercent = 0.0;
  double SeqRegionSpeedup = 1.0; ///< The modeled dilation artifact.

  // Robustness: populated when the pipeline ran with fault injection or a
  // watchdog budget (all-default otherwise).
  bool FaultsActive = false;    ///< A fault plan was injected this run.
  uint64_t FaultSeed = 0;       ///< Fault-plan seed (replay handle).
  uint64_t DegradedRegions = 0; ///< Regions re-run via the sequential path.

  /// Ledger analyses; null unless the EventLog was active during the run
  /// (shared_ptr keeps ModeRunResult cheaply copyable through the
  /// experiment runner's capture/replay plumbing).
  std::shared_ptr<const ForensicsResult> Forensics;
};

/// One recorded pipeline run call — the experiment runner's capture/replay
/// unit, and one axis of the result-cache key. Captures the robustness
/// settings in effect at the call (sweep binaries vary them per run).
struct RunStep {
  RobustnessOptions Robust;
  bool Perfect = false; ///< runWithPerfectLoads() instead of run(Mode).
  ExecMode Mode = ExecMode::U;
  double Percent = 0.0; ///< Perfect-load frequency threshold (Perfect only).
};

/// A run step executed ahead of time by an experiment-runner worker,
/// consumed when the main thread replays the bench body.
struct PrecomputedRun {
  RunStep Step;
  ModeRunResult Result;
};

} // namespace specsync

#endif // SPECSYNC_HARNESS_EXPERIMENT_H
