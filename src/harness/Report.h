//===- harness/Report.h - Figure/table rendering ---------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders benchmark results in the paper's style: normalized stacked bars
/// (busy / fail / sync / other) per execution mode, and summary tables.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_REPORT_H
#define SPECSYNC_HARNESS_REPORT_H

#include "harness/Experiment.h"

#include <string>
#include <vector>

namespace specsync {

/// Renders one mode's bar: "U  |BBBBBFFFFSSOO| 123.4" style, where
/// B=busy, F=fail, S=sync, O=other, scaled so 100 units = 25 cells.
std::string renderModeBar(const std::string &Label, const ModeRunResult &R);

/// Renders a legend line for the bar tags.
std::string barLegend();

/// Renders a group of bars under a benchmark heading.
std::string renderBenchmarkBars(const std::string &Benchmark,
                                const std::vector<ModeRunResult> &Results);

} // namespace specsync

#endif // SPECSYNC_HARNESS_REPORT_H
