//===- harness/Report.h - Figure/table rendering ---------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders benchmark results in the paper's style: normalized stacked bars
/// (busy / fail / sync / other) per execution mode, and summary tables.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_REPORT_H
#define SPECSYNC_HARNESS_REPORT_H

#include "analysis/DepOracle.h"
#include "analysis/Diag.h"
#include "analysis/Remediator.h"
#include "harness/Experiment.h"
#include "rt/RtOptions.h"

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace specsync {

namespace obs {
class JsonWriter;
} // namespace obs

/// Renders one mode's bar: "U  |BBBBBFFFFSSOO| 123.4" style, where
/// B=busy, F=fail, S=sync, O=other, scaled so 100 units = 25 cells.
std::string renderModeBar(const std::string &Label, const ModeRunResult &R);

/// Renders a legend line for the bar tags.
std::string barLegend();

/// Renders a group of bars under a benchmark heading.
std::string renderBenchmarkBars(const std::string &Benchmark,
                                const std::vector<ModeRunResult> &Results);

//===----------------------------------------------------------------------===//
// Machine-readable reports (--json-out / BENCH_*.json)
//===----------------------------------------------------------------------===//

/// Sampling provenance of a benchmark's dependence profiles: the sampling
/// configuration plus the observed/total epoch tallies of the ref and
/// train profiling runs (the denominators behind every confidence bound
/// in the report).
struct ProfileSamplingSummary {
  uint64_t SampleEvery = 1;
  uint64_t SampleSeed = 0;
  uint64_t MinObserveEpochs = 0;
  uint64_t RefSampledEpochs = 0;
  uint64_t RefTotalEpochs = 0;
  uint64_t TrainSampledEpochs = 0;
  uint64_t TrainTotalEpochs = 0;
};

/// The results a bench binary collected for one benchmark, with the label
/// each run was presented under (usually the mode letter; limit studies
/// use labels like "perfect>5%").
struct BenchmarkModeResults {
  std::string Benchmark;
  struct Entry {
    std::string Label;
    ModeRunResult Result;
  };
  std::vector<Entry> Entries;
  /// The workload's PRNG seed; emitted (with the fault seed) when a
  /// robustness run is being reported so the run can be replayed exactly.
  uint64_t WorkloadSeed = 0;

  /// Static-analysis payload: the oracle verdict tables of the C
  /// (ref-profile) and T (train-profile) builds plus the accumulated
  /// diagnostics. Null (the default) omits the `static_analysis` block
  /// entirely, keeping reports byte-identical to pre-analysis schemas.
  std::shared_ptr<const analysis::DepOracleResult> OracleRef;
  std::shared_ptr<const analysis::DepOracleResult> OracleTrain;
  std::shared_ptr<const analysis::DiagEngine> AnalysisDiags;

  /// Sampled-profiling payload. Null (the default) omits the
  /// `profile_sampling` block entirely, keeping reports byte-identical
  /// to exact-profiling schemas.
  std::shared_ptr<const ProfileSamplingSummary> Sampling;

  /// Remediator plan payload (per-pair decisions, counters, cache stats).
  /// Null (the default) omits the `remedies` block entirely, keeping
  /// reports byte-identical to pre-remediator schemas.
  std::shared_ptr<const analysis::RemedyPlan> Remedies;

  /// Real-threads backend runs for this benchmark (one per mode swept).
  /// Empty (the default) omits the `real_threads` block entirely, keeping
  /// reports byte-identical to pre-backend schemas.
  struct RtEntry {
    std::string Label;
    std::shared_ptr<const rt::RtRunResult> Result;
  };
  std::vector<RtEntry> RealThreads;
};

/// Serializes one mode run: every TLSSimResult counter, the slot
/// breakdown, and the derived figures the text bars are drawn from.
void writeModeRunResultJson(obs::JsonWriter &W, const std::string &Label,
                            const ModeRunResult &R);

/// Writes the full report document: title, per-benchmark mode entries,
/// and — when `--stats` is active — a dump of the stat registry.
///
/// When \p Robust is non-null and active, the document additionally
/// records the fault plan, watchdog settings and per-benchmark workload
/// seeds so a faulted run can be replayed bit-exactly; with Robust null or
/// inert the output is byte-identical to a build without the robustness
/// subsystem.
void writeJsonReport(std::ostream &OS, const std::string &Title,
                     const std::vector<BenchmarkModeResults> &All,
                     const RobustnessOptions *Robust = nullptr);

/// File variant; returns false on I/O failure.
bool writeJsonReportFile(const std::string &Path, const std::string &Title,
                         const std::vector<BenchmarkModeResults> &All,
                         const RobustnessOptions *Robust = nullptr);

} // namespace specsync

#endif // SPECSYNC_HARNESS_REPORT_H
