//===- harness/RegionSelect.cpp ---------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/RegionSelect.h"

#include "compiler/PassManager.h"
#include "interp/Interpreter.h"
#include "ir/Dominators.h"
#include "ir/LoopInfo.h"
#include "profile/DepProfiler.h"
#include "profile/LoopProfiler.h"
#include "sim/SeqSimulator.h"
#include "sim/TLSSimulator.h"

using namespace specsync;

std::vector<RegionCandidate> specsync::findCandidateLoops(Program &P) {
  std::vector<RegionCandidate> Candidates;
  const Function &Entry = P.getFunction(P.getEntry());
  CFG G(Entry);
  Dominators DT(G);
  LoopInfo LI(Entry, G, DT);
  for (const Loop &L : LI.loops())
    Candidates.push_back(RegionCandidate{Entry.getIndex(), L.Header});
  return Candidates;
}

RegionChoice specsync::chooseRegion(
    const std::function<std::unique_ptr<Program>(const RegionCandidate *)>
        &Build,
    const MachineConfig &Config, const LoopSelectionParams &Params) {
  RegionChoice Choice;

  // Sequential baseline: no region annotated at all.
  {
    std::unique_ptr<Program> P = Build(nullptr);
    P->assignIds();
    ContextTable Ctx;
    InterpResult R = Interpreter(*P, Ctx).run();
    if (!R.Completed)
      return Choice;
    Choice.SequentialCycles =
        simulateSequential(Config, R.Trace).TotalCycles;
  }

  // Candidate discovery on a throwaway build.
  std::vector<RegionCandidate> Candidates;
  {
    std::unique_ptr<Program> P = Build(nullptr);
    P->assignIds();
    Candidates = findCandidateLoops(*P);
  }

  uint64_t BestCycles = ~0ull;
  for (const RegionCandidate &Cand : Candidates) {
    CandidateScore Score;
    Score.Candidate = Cand;

    ContextTable Ctx;
    std::unique_ptr<Program> P = Build(&Cand);
    P->assignIds();

    // Screen with the paper's heuristics.
    LoopProfiler LP;
    DepProfiler DP;
    ObserverList Obs;
    Obs.add(&LP);
    Obs.add(&DP);
    InterpOptions NoTrace;
    NoTrace.CollectTrace = false;
    InterpResult ProfRun = Interpreter(*P, Ctx).run(NoTrace, &Obs);
    if (!ProfRun.Completed) {
      Score.RejectReason = "did not terminate";
      Choice.Scores.push_back(Score);
      continue;
    }
    Score.CoveragePercent = LP.profile().coveragePercent();
    LoopSelectionResult Sel = selectLoop(LP.profile(), Params);
    if (!Sel.Selected) {
      Score.RejectReason = Sel.Reason;
      Choice.Scores.push_back(Score);
      continue;
    }
    Score.PassedHeuristics = true;
    DepProfile Profile = DP.takeProfile();

    // The optimistic bound: scalar-synchronized TLS with every >5%-
    // frequency load perfectly predicted.
    std::unique_ptr<Program> PB = Build(&Cand);
    BaseTransformResult Base =
        applyBaseTransforms(*PB, Sel.UnrollFactor);
    InterpResult TraceRun = Interpreter(*PB, Ctx).run();
    if (!TraceRun.Completed) {
      Score.RejectReason = "transformed program did not terminate";
      Score.PassedHeuristics = false;
      Choice.Scores.push_back(Score);
      continue;
    }

    LoadNameSet Immune;
    for (const RefName &Name : Profile.loadsAboveThreshold(5.0))
      Immune.insert({Name.InstId, Name.Context});

    TLSSimOptions Opts;
    Opts.NumScalarChannels = Base.Scalar.NumChannels;
    Opts.ImmuneLoads = &Immune;
    TLSSimulator Sim(Config, Opts);
    uint64_t ParallelRegion = 0;
    for (const RegionTrace &R : TraceRun.Trace.Regions)
      ParallelRegion += Sim.simulateRegion(R).Cycles;

    SeqSimResult Seq = simulateSequential(Config, TraceRun.Trace);
    uint64_t Outside = Seq.TotalCycles - Seq.regionCyclesTotal();
    Score.OptimisticProgramCycles = Outside + ParallelRegion;
    Choice.Scores.push_back(Score);

    if (Score.OptimisticProgramCycles < BestCycles) {
      BestCycles = Score.OptimisticProgramCycles;
      Choice.Chosen = Cand;
      Choice.Found = true;
    }
  }

  // Parallelization must actually pay off against plain sequential.
  if (Choice.Found && BestCycles >= Choice.SequentialCycles)
    Choice.Found = false;
  return Choice;
}
