//===- harness/ExperimentRunner.cpp -----------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/ExperimentRunner.h"

#include "harness/ResultCache.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

using namespace specsync;

unsigned ExperimentOptions::effectiveJobs() const {
  return Jobs == 0 ? ThreadPool::defaultJobs() : Jobs;
}

ProfileSamplingOptions ExperimentOptions::profileSampling() const {
  ProfileSamplingOptions S;
  S.SampleEvery = ProfileSampleEvery == 0 ? 1 : ProfileSampleEvery;
  S.SampleSeed = ProfileSampleSeed;
  // Sharding is result-invariant, so tying it to --jobs keeps sampled
  // runs byte-identical across job counts while using the same budget.
  S.Shards = S.active() ? effectiveJobs() : 1;
  return S;
}

ExperimentOptions specsync::parseExperimentArgs(int argc, char **argv) {
  ExperimentOptions Opts;

  if (const char *E = std::getenv("SPECSYNC_JOBS")) {
    long V = std::strtol(E, nullptr, 10);
    if (V >= 0)
      Opts.Jobs = static_cast<unsigned>(V);
  }
  if (const char *E = std::getenv("SPECSYNC_CACHE_DIR"))
    Opts.CacheDir = E;
  if (const char *E = std::getenv("SPECSYNC_WORKLOADS"))
    Opts.WorkloadFilter = E;
  if (const char *E = std::getenv("SPECSYNC_PROFILE_SAMPLE")) {
    long V = std::strtol(E, nullptr, 10);
    if (V >= 1)
      Opts.ProfileSampleEvery = static_cast<uint64_t>(V);
  }
  if (const char *E = std::getenv("SPECSYNC_PROFILE_SAMPLE_SEED"))
    Opts.ProfileSampleSeed =
        static_cast<uint64_t>(std::strtoull(E, nullptr, 10));

  auto valueOf = [](const char *Arg, const char *Prefix) -> const char * {
    size_t N = std::strlen(Prefix);
    return std::strncmp(Arg, Prefix, N) == 0 ? Arg + N : nullptr;
  };

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (const char *V = valueOf(Arg, "--jobs="))
      Opts.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    else if (const char *V = valueOf(Arg, "--cache-dir="))
      Opts.CacheDir = V;
    else if (const char *V = valueOf(Arg, "--workloads="))
      Opts.WorkloadFilter = V;
    else if (const char *V = valueOf(Arg, "--profile-sample=")) {
      unsigned long long N = std::strtoull(V, nullptr, 10);
      Opts.ProfileSampleEvery = N >= 1 ? N : 1;
    } else if (const char *V = valueOf(Arg, "--profile-sample-seed="))
      Opts.ProfileSampleSeed =
          static_cast<uint64_t>(std::strtoull(V, nullptr, 10));
  }
  return Opts;
}

int specsync::stripExperimentArgs(int argc, char **argv) {
  auto isExpArg = [](const char *Arg) {
    return std::strncmp(Arg, "--jobs=", 7) == 0 ||
           std::strncmp(Arg, "--cache-dir=", 12) == 0 ||
           std::strncmp(Arg, "--workloads=", 12) == 0 ||
           std::strncmp(Arg, "--profile-sample=", 17) == 0 ||
           std::strncmp(Arg, "--profile-sample-seed=", 22) == 0;
  };
  int Out = 1;
  for (int I = 1; I < argc; ++I)
    if (!isExpArg(argv[I]))
      argv[Out++] = argv[I];
  for (int I = Out; I < argc; ++I)
    argv[I] = nullptr;
  return Out;
}

namespace {
ExperimentOptions SessionOptions;
} // namespace

void specsync::setSessionExperimentOptions(const ExperimentOptions &Opts) {
  SessionOptions = Opts;
}

const ExperimentOptions &specsync::sessionExperimentOptions() {
  return SessionOptions;
}

std::vector<const Workload *>
specsync::filterWorkloads(std::vector<const Workload *> All,
                          const std::string &Filter) {
  if (Filter.empty())
    return All;

  std::vector<std::string> Names;
  size_t Pos = 0;
  while (Pos <= Filter.size()) {
    size_t Comma = Filter.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Filter.size();
    if (Comma > Pos)
      Names.push_back(Filter.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }

  // Canonical order: iterate the grid, not the filter.
  std::vector<const Workload *> Out;
  for (const Workload *W : All)
    for (const std::string &N : Names)
      if (W->Name == N) {
        Out.push_back(W);
        break;
      }
  for (const std::string &N : Names) {
    bool Known = false;
    for (const Workload *W : All)
      if (W->Name == N)
        Known = true;
    if (!Known)
      std::fprintf(stderr, "runner: --workloads name %s not in this grid\n",
                   N.c_str());
  }
  return Out;
}

std::vector<const Workload *>
specsync::filterWorkloads(const std::vector<Workload> &All,
                          const std::string &Filter) {
  std::vector<const Workload *> Ptrs;
  Ptrs.reserve(All.size());
  for (const Workload &W : All)
    Ptrs.push_back(&W);
  return filterWorkloads(std::move(Ptrs), Filter);
}

std::unique_ptr<ResultCache> specsync::makeSessionResultCache() {
  const ExperimentOptions &Opts = sessionExperimentOptions();
  if (Opts.CacheDir.empty())
    return nullptr;
  if (obs::statsEnabled() || obs::TraceLog::process().active() ||
      obs::EventLog::process().active()) {
    std::fprintf(stderr, "cache: disabled while --stats, --trace-out or "
                         "--events-out is active (cached runs record "
                         "nothing)\n");
    return nullptr;
  }
  return std::make_unique<ResultCache>(Opts.CacheDir);
}

void specsync::reportCacheStats(const ResultCache *Cache) {
  if (!Cache)
    return;
  std::fprintf(stderr,
               "cache: %llu hit(s), %llu miss(es), %llu store(s) in %s\n",
               static_cast<unsigned long long>(Cache->hits()),
               static_cast<unsigned long long>(Cache->misses()),
               static_cast<unsigned long long>(Cache->stores()),
               Cache->dir().c_str());
}

CellObs::CellObs() {
  // Mirror the process sinks: a cell records events only if the process
  // is recording, with the same ring capacity so drop accounting matches
  // a serial run.
  obs::TraceLog &P = obs::TraceLog::process();
  if (P.active())
    Trace.start(P.capacity());
  obs::EventLog &E = obs::EventLog::process();
  if (E.active())
    Events.start(E.capacity());
}

void CellObs::mergeIntoProcess() {
  obs::StatRegistry::process().mergeFrom(Stats);
  if (Trace.active()) {
    Trace.stop();
    obs::TraceLog::process().mergeFrom(Trace);
  }
  if (Events.active()) {
    Events.stop();
    obs::EventLog::process().mergeFrom(Events);
  }
}

void specsync::runCellsOrdered(size_t NumCells, unsigned Jobs,
                               const std::function<void(size_t)> &Prepare,
                               const std::function<void(size_t)> &Consume) {
  if (NumCells == 0)
    return;

  std::vector<std::unique_ptr<CellObs>> Obs;
  Obs.reserve(NumCells);
  for (size_t I = 0; I < NumCells; ++I)
    Obs.push_back(std::make_unique<CellObs>());

  if (Jobs <= 1 || NumCells == 1) {
    // Serial: identical scoping and merge order, no threads involved.
    for (size_t I = 0; I < NumCells; ++I) {
      {
        CellObsScope Scope(*Obs[I]);
        Prepare(I);
        Consume(I);
      }
      Obs[I]->mergeIntoProcess();
      Obs[I].reset();
    }
    return;
  }

  std::mutex M;
  std::condition_variable Cv;
  std::vector<uint8_t> Done(NumCells, 0);
  std::vector<std::exception_ptr> Errors(NumCells);

  ThreadPool Pool(static_cast<unsigned>(
      std::min<size_t>(Jobs, NumCells)));
  for (size_t I = 0; I < NumCells; ++I)
    Pool.submit([&, I] {
      try {
        CellObsScope Scope(*Obs[I]);
        Prepare(I);
      } catch (...) {
        Errors[I] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> Lock(M);
        Done[I] = 1;
      }
      Cv.notify_all();
    });

  for (size_t I = 0; I < NumCells; ++I) {
    {
      std::unique_lock<std::mutex> Lock(M);
      Cv.wait(Lock, [&] { return Done[I] != 0; });
    }
    if (Errors[I]) {
      Pool.waitIdle(); // Don't tear down under running cells.
      std::rethrow_exception(Errors[I]);
    }
    {
      CellObsScope Scope(*Obs[I]);
      Consume(I);
    }
    Obs[I]->mergeIntoProcess();
    Obs[I].reset();
  }
}

void specsync::runBenchmarkGrid(
    const MachineConfig &Config, const RobustnessOptions &Robust,
    const analysis::StaticAnalysisOptions &Static,
    const std::function<void(BenchmarkPipeline &)> &Body) {
  const ExperimentOptions &Opts = sessionExperimentOptions();
  std::vector<const Workload *> Cells =
      filterWorkloads(allWorkloads(), Opts.WorkloadFilter);
  if (Cells.empty())
    return;

  std::unique_ptr<ResultCache> Cache = makeSessionResultCache();

  // Cell 0 runs the body live on this thread and records the run plan
  // the workers execute for the remaining cells. Prepared eagerly: the
  // body may introspect pipeline state before (or without) running a
  // mode, and this is also the cell that discovers werror aborts early.
  std::vector<RunStep> Plan;
  {
    CellObs Obs0;
    {
      CellObsScope Scope(Obs0);
      BenchmarkPipeline P(*Cells[0], Config);
      P.setSampling(Opts.profileSampling());
      P.setRobustness(Robust);
      P.setStaticAnalysis(Static);
      P.setResultCache(Cache.get());
      P.setRecordPlan(&Plan);
      P.prepare();
      Body(P);
    }
    Obs0.mergeIntoProcess();
  }

  size_t Rest = Cells.size() - 1;
  std::vector<std::unique_ptr<BenchmarkPipeline>> Pipes(Rest);
  std::vector<std::vector<PrecomputedRun>> Results(Rest);

  runCellsOrdered(
      Rest, Opts.effectiveJobs(),
      [&](size_t I) {
        const Workload &W = *Cells[I + 1];
        auto P = std::make_unique<BenchmarkPipeline>(W, Config);
        P->setSampling(Opts.profileSampling());
        P->setRobustness(Robust);
        P->setStaticAnalysis(Static);
        P->setResultCache(Cache.get());
        // A body with no recorded runs only introspects (always needs a
        // prepared pipeline); oracle verdicts also live in prepared
        // state. Otherwise preparation is lazy — fully cached cells skip
        // it entirely.
        if (Plan.empty() || Static.EnableOracle)
          P->prepare();
        for (const RunStep &Step : Plan) {
          P->setRobustness(Step.Robust);
          ModeRunResult R = Step.Perfect
                                ? P->runWithPerfectLoads(Step.Percent)
                                : P->run(Step.Mode);
          Results[I].push_back({Step, R});
        }
        P->setRobustness(Robust); // The replayed body starts from here.
        Pipes[I] = std::move(P);
      },
      [&](size_t I) {
        Pipes[I]->setPrecomputed(std::move(Results[I]));
        Body(*Pipes[I]);
        Pipes[I].reset();
      });

  reportCacheStats(Cache.get());
}
