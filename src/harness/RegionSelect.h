//===- harness/RegionSelect.h - Choosing where to parallelize --*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3.1 "Deciding Where to Parallelize": candidate
/// loops are screened by the coverage / trip-count / epoch-size
/// heuristics, then each survivor is evaluated under an optimistic upper
/// bound — TLS execution in which every load with a dependence frequency
/// above 5% is perfectly predicted — and the loop that minimizes total
/// program execution time is selected.
///
/// The benchmark kernels annotate their loop by hand (the paper's choice
/// is known); this module provides the *automatic* procedure for programs
/// with several candidates, exercised by tests and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_REGIONSELECT_H
#define SPECSYNC_HARNESS_REGIONSELECT_H

#include "compiler/LoopSelection.h"
#include "sim/MachineConfig.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace specsync {

class Program;

/// A candidate region: a natural-loop header in some function.
struct RegionCandidate {
  unsigned Func = ~0u;
  unsigned Header = ~0u;
};

/// One candidate's evaluation.
struct CandidateScore {
  RegionCandidate Candidate;
  bool PassedHeuristics = false;
  std::string RejectReason;
  double CoveragePercent = 0.0;
  /// Whole-program cycles under the optimistic bound (sequential outside
  /// the candidate region, perfectly-predicted TLS inside).
  uint64_t OptimisticProgramCycles = 0;
};

struct RegionChoice {
  bool Found = false;
  RegionCandidate Chosen;
  uint64_t SequentialCycles = 0;
  std::vector<CandidateScore> Scores; ///< Every candidate, evaluated.
};

/// Enumerates every natural-loop header of \p P's entry function
/// (outermost-first by header index).
std::vector<RegionCandidate> findCandidateLoops(Program &P);

/// Evaluates every candidate loop of the program produced by \p Build
/// (a deterministic builder invoked once per candidate so each evaluation
/// gets a fresh program with only that region annotated) and returns the
/// loop minimizing optimistic whole-program time. \p Build receives the
/// candidate to annotate, or no region for the sequential baseline when
/// passed std::nullopt semantics via an invalid candidate.
RegionChoice chooseRegion(
    const std::function<std::unique_ptr<Program>(const RegionCandidate *)>
        &Build,
    const MachineConfig &Config,
    const LoopSelectionParams &Params = {});

} // namespace specsync

#endif // SPECSYNC_HARNESS_REGIONSELECT_H
