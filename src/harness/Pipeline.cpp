//===- harness/Pipeline.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include "compiler/PassManager.h"
#include "interp/Interpreter.h"
#include "obs/PhaseTimer.h"
#include "obs/StatRegistry.h"
#include "obs/TraceLog.h"

#include <algorithm>
#include <cassert>
#include <iostream>

using namespace specsync;

namespace {

void reportAudit(const char *Binary, const Workload &W,
                 const SignalAuditResult &Audit) {
  if (Audit.clean())
    return;
  std::cerr << "signal-placement audit failed (" << Binary << " binary, "
            << W.Name << "): " << Audit.summary() << "\n";
}

} // namespace

BenchmarkPipeline::BenchmarkPipeline(const Workload &W,
                                     const MachineConfig &Config,
                                     double FreqThresholdPercent)
    : Bench(W), Config(Config), FreqThreshold(FreqThresholdPercent) {}

void BenchmarkPipeline::setTrainProfile(DepProfile P) {
  assert(!Prepared && "setTrainProfile must be called before prepare()");
  TrainOverride = std::make_unique<DepProfile>(std::move(P));
}

void BenchmarkPipeline::prepare() {
  obs::ScopedPhaseTimer PrepTimer("harness.prepare");

  // Phase 1: profile the original program and pick the unroll factor.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.loop_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    Interpreter I(*P, Contexts);
    LoopProfiler LP;
    InterpOptions Opts;
    Opts.CollectTrace = false;
    InterpResult R = I.run(Opts, &LP);
    assert(R.Completed && "original program did not terminate");
    (void)R;
    RefLoop = LP.profile();
    Selection = selectLoop(RefLoop);
    WorkloadSeed = P->getRandSeed();
  }

  unsigned Factor = Selection.Selected ? Selection.UnrollFactor : 1;

  // Phase 2: dependence profiles on base-transformed binaries. The same
  // ContextTable serves both runs so context ids line up; the builds are
  // deterministic so static ids line up too.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.train_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Train);
    applyBaseTransforms(*P, Factor);
    Interpreter I(*P, Contexts);
    DepProfiler DP;
    InterpOptions Opts;
    Opts.CollectTrace = false;
    I.run(Opts, &DP);
    TrainProfile = DP.takeProfile();
    // An externally supplied profile replaces the result, not the run: the
    // profiling run still populates the shared ContextTable so context ids
    // downstream stay aligned with a normal pipeline.
    if (TrainOverride)
      TrainProfile = std::move(*TrainOverride);
  }
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.ref_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    BaseTransformResult Base = applyBaseTransforms(*P, Factor);
    NumScalarChannels = Base.Scalar.NumChannels;
    Interpreter I(*P, Contexts);
    DepProfiler DP;
    InterpOptions Opts;
    Opts.CollectTrace = true; // Doubles as the U binary's trace.
    InterpResult R = I.run(Opts, &DP);
    assert(R.Completed && "U binary did not terminate");
    RefProfile = DP.takeProfile();
    UTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }

  // Phase 3: sequential baseline on the original program.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.seq_baseline");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    P->assignIds();
    Interpreter I(*P, Contexts);
    InterpResult R = I.run();
    assert(R.Completed && "sequential baseline did not terminate");
    SeqBaseline = simulateSequential(Config, R.Trace);
  }

  // Phase 4: compiler-synchronized binaries (ref and train profiles).
  MemSyncOptions MSOpts;
  MSOpts.FreqThresholdPercent = FreqThreshold;
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.build_c");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*P, Factor);
    RefMemSync = applyMemSync(*P, Contexts, RefProfile, MSOpts);
    RefAudit = auditSignalPlacement(*P, RefMemSync.NumGroups);
    reportAudit("C", Bench, RefAudit);
    assert(RefAudit.clean() && "C binary failed the signal-placement audit");
    for (const auto &[Name, Group] : RefMemSync.SyncedLoadSet)
      RefSyncSet.insert({Name.InstId, Name.Context});
    Interpreter I(*P, Contexts);
    InterpResult R = I.run();
    assert(R.Completed && "C binary did not terminate");
    CTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.build_t");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*P, Factor);
    TrainMemSync = applyMemSync(*P, Contexts, TrainProfile, MSOpts);
    TrainAudit = auditSignalPlacement(*P, TrainMemSync.NumGroups);
    reportAudit("T", Bench, TrainAudit);
    assert(TrainAudit.clean() && "T binary failed the signal-placement audit");
    Interpreter I(*P, Contexts);
    InterpResult R = I.run();
    assert(R.Completed && "T binary did not terminate");
    TTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }

  Prepared = true;
}

TLSSimResult
BenchmarkPipeline::sequentialFallback(const TLSSimResult &Attempt,
                                      const RegionTrace &Region,
                                      size_t RegionIdx) const {
  TLSSimResult S = Attempt; // Keep the fault/watchdog accounting.
  S.Completed = true;
  S.DegradedToSequential = true;
  uint64_t SeqCycles = RegionIdx < SeqBaseline.RegionCycles.size()
                           ? SeqBaseline.RegionCycles[RegionIdx]
                           : Attempt.Cycles;
  S.Cycles = SeqCycles;
  S.Slots.Total =
      SeqCycles * Config.IssueWidth * Config.NumCores;
  uint64_t Insts = 0;
  for (const EpochTrace &E : Region.Epochs)
    Insts += E.Insts.size();
  S.Slots.Busy = std::min(Insts, S.Slots.Total);
  S.Slots.Fail = 0;
  S.Slots.SyncScalar = 0;
  S.Slots.SyncMem = 0;
  S.EpochsCommitted = Region.Epochs.size();
  return S;
}

ModeRunResult BenchmarkPipeline::simulate(const ProgramTrace &Trace,
                                          TLSSimOptions Opts, ExecMode Mode) {
  Opts.NumScalarChannels = NumScalarChannels;
  Opts.CompilerSyncSet = &RefSyncSet;

  bool Robustness = Robust.active();
  if (Robustness) {
    Opts.Faults = &Robust.Plan;
    Opts.WatchdogBudget = Robust.WatchdogBudget;
    Opts.WatchdogBackoffBase = Robust.WatchdogBackoffBase;
    Opts.EpochRetryLimit = Robust.EpochRetryLimit;
    Opts.GroupDemoteThreshold = Robust.GroupDemoteThreshold;
    Opts.DegradeSquashRate = Robust.DegradeSquashRate;
  }

  // Each (benchmark, mode) run gets its own timeline track group so the
  // trace viewer shows one row of core tracks per simulated binary.
  obs::TraceLog &TL = obs::TraceLog::global();
  if (TL.active())
    TL.beginProcess(Bench.Name + "/" + modeName(Mode));
  obs::ScopedPhaseTimer Timer(std::string("harness.run.") + modeName(Mode));
  Timer.setItems(Trace.numRegionDynInsts());

  ModeRunResult Result;
  Result.Mode = Mode;
  TLSSimulator Sim(Config, Opts);
  for (size_t I = 0; I < Trace.Regions.size(); ++I) {
    TLSSimResult SR = Sim.simulateRegion(Trace.Regions[I]);
    // Graceful degradation: when the watchdog gave up on a region (or a
    // faulted run failed to complete), charge the region at its
    // sequential-baseline timing instead of the broken parallel attempt.
    if (Robustness && (SR.DegradedToSequential || !SR.Completed)) {
      SR = sequentialFallback(SR, Trace.Regions[I], I);
      ++Result.DegradedRegions;
      if (obs::statsEnabled())
        obs::StatRegistry::global()
            .counter("harness.degraded_regions")
            ->add(1);
    }
    Result.Sim.accumulate(SR);
  }
  if (Robustness) {
    Result.FaultsActive = Robust.Plan.enabled();
    Result.FaultSeed = Robust.Plan.Seed;
  }

  Result.SeqRegionCycles = SeqBaseline.regionCyclesTotal();
  Result.CoveragePercent = RefLoop.coveragePercent();
  Result.SeqRegionSpeedup = Bench.SeqDilation;

  // Whole-program accounting: sequential portions dilated by the modeled
  // instrumentation artifact, regions replaced by their parallel time.
  double DilatedSeq =
      static_cast<double>(SeqBaseline.SeqCycles) / Bench.SeqDilation;
  double Par = DilatedSeq + static_cast<double>(Result.Sim.Cycles);
  if (Par > 0)
    Result.ProgramSpeedup =
        static_cast<double>(SeqBaseline.TotalCycles) / Par;
  return Result;
}

ModeRunResult BenchmarkPipeline::run(ExecMode Mode) {
  assert(Prepared && "call prepare() first");
  TLSSimOptions Opts;
  const ProgramTrace *Trace = UTrace.get();

  switch (Mode) {
  case ExecMode::U:
    break;
  case ExecMode::O:
    Opts.OraclePerfectMemory = true;
    break;
  case ExecMode::T:
    Trace = TTrace.get();
    Opts.NumMemGroups = TrainMemSync.NumGroups;
    break;
  case ExecMode::C:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    break;
  case ExecMode::E:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.PerfectSyncedValues = true;
    break;
  case ExecMode::L:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.StallSyncedUntilDone = true;
    break;
  case ExecMode::P:
    Opts.HwValuePredict = true;
    break;
  case ExecMode::H:
    Opts.HwSyncStall = true;
    break;
  case ExecMode::B:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.HwSyncStall = true;
    break;
  }
  return simulate(*Trace, Opts, Mode);
}

ModeRunResult BenchmarkPipeline::runWithPerfectLoads(double Percent) {
  assert(Prepared && "call prepare() first");
  LoadNameSet Immune; // Outlives the simulate() call below.
  for (const RefName &Name : RefProfile.loadsAboveThreshold(Percent))
    Immune.insert({Name.InstId, Name.Context});
  TLSSimOptions Opts;
  Opts.ImmuneLoads = &Immune;
  return simulate(*UTrace, Opts, ExecMode::U);
}
