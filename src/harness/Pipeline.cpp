//===- harness/Pipeline.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Pipeline.h"

#include "compiler/ApplyRemedies.h"
#include "compiler/PassManager.h"
#include "harness/ResultCache.h"
#include "interp/Interpreter.h"
#include "interp/Native.h"
#include "obs/EventLog.h"
#include "obs/PhaseTimer.h"
#include "obs/StatRegistry.h"
#include "obs/TraceLog.h"
#include "rt/Replay.h"
#include "rt/RtEngine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

using namespace specsync;


BenchmarkPipeline::BenchmarkPipeline(const Workload &W,
                                     const MachineConfig &Config,
                                     double FreqThresholdPercent)
    : Bench(W), Config(Config), FreqThreshold(FreqThresholdPercent) {}

void BenchmarkPipeline::setTrainProfile(DepProfile P) {
  assert(!Prepared && "setTrainProfile must be called before prepare()");
  TrainOverride = std::make_unique<DepProfile>(std::move(P));
}

void BenchmarkPipeline::prepare() {
  if (Prepared)
    return;
  obs::ScopedPhaseTimer PrepTimer("harness.prepare");

  // Phase 1: profile the original program and pick the unroll factor.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.loop_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    Interpreter I(*P, Contexts);
    LoopProfiler LP;
    InterpOptions Opts;
    Opts.CollectTrace = false;
    InterpResult R = I.run(Opts, &LP);
    assert(R.Completed && "original program did not terminate");
    (void)R;
    RefLoop = LP.profile();
    Selection = selectLoop(RefLoop);
    WorkloadSeed = P->getRandSeed();
  }

  unsigned Factor = Selection.Selected ? Selection.UnrollFactor : 1;

  // Phase 2: dependence profiles on base-transformed binaries. The same
  // ContextTable serves both runs so context ids line up; the builds are
  // deterministic so static ids line up too.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.train_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Train);
    applyBaseTransforms(*P, Factor);
    Interpreter I(*P, Contexts);
    DepProfiler DP(SamplingOpts);
    InterpOptions Opts;
    Opts.CollectTrace = false;
    I.run(Opts, &DP);
    TrainProfile = DP.takeProfile();
    // An externally supplied profile replaces the result, not the run: the
    // profiling run still populates the shared ContextTable so context ids
    // downstream stay aligned with a normal pipeline.
    if (TrainOverride)
      TrainProfile = std::move(*TrainOverride);
  }
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.ref_profile");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    BaseTransformResult Base = applyBaseTransforms(*P, Factor);
    NumScalarChannels = Base.Scalar.NumChannels;
    Interpreter I(*P, Contexts);
    DepProfiler DP(SamplingOpts);
    InterpOptions Opts;
    Opts.CollectTrace = true; // Doubles as the U binary's trace.
    I.setTraceArena(&Arena);
    InterpResult R = I.run(Opts, &DP);
    assert(R.Completed && "U binary did not terminate");
    RefProfile = DP.takeProfile();
    UTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }

  // Phase 3: sequential baseline on the original program.
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.seq_baseline");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    P->assignIds();
    Interpreter I(*P, Contexts);
    I.setTraceArena(&Arena);
    InterpResult R = I.run();
    assert(R.Completed && "sequential baseline did not terminate");
    SeqBaseline = simulateSequential(Config, R.Trace);
    // The baseline trace is fully consumed; its buffers feed later runs.
    Arena.recycle(std::move(R.Trace));
  }

  // Phase 3.5: static may-dependence analysis (oracle fusion and/or the
  // remediator chain). Runs on a fresh base-transformed ref build —
  // deterministic builds make its static ids identical to the profiled
  // binaries' — and cross-checks both profiles before they drive
  // synchronization.
  if (StaticOpts.active()) {
    obs::ScopedPhaseTimer Timer("harness.prepare.static_analysis");
    if (StaticOpts.EnableOracle && StaticOpts.InjectStalePair) {
      // Stale-profile simulation: the oracle must refute these entries, or
      // MemSync's profile-name lookup below would assert.
      analysis::appendStaleProfilePair(RefProfile);
      analysis::appendStaleProfilePair(TrainProfile);
    }
    AnalysisProg = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*AnalysisProg, Factor);
    Engine = std::make_unique<analysis::StaticAnalysisEngine>(*AnalysisProg,
                                                              Contexts);
    Engine->analyze();
    if (StaticOpts.EnableOracle) {
      RefOracle = std::make_unique<analysis::DepOracleResult>(
          Engine->fuse(RefProfile, FreqThreshold));
      TrainOracle = std::make_unique<analysis::DepOracleResult>(
          Engine->fuse(TrainProfile, FreqThreshold));
    }
    if (StaticOpts.EnableRemedies) {
      // One plan from the ref profile serves both compiler-synchronized
      // builds; the word-exact profile is the soundness gate's ground
      // truth, so the gate sees the same dependences the C build syncs.
      unsigned LineShift = 0;
      while ((1u << LineShift) < Config.CacheLineBytes)
        ++LineShift;
      analysis::RemedyContext RCtx{*AnalysisProg, Engine->alias(),
                                   Engine->tester(), &RefProfile,
                                   FreqThreshold, LineShift};
      Plan = analysis::buildRemedyPlan(RCtx, &Engine->diags());
    }
    // The engine collected its region/fusion/gate findings internally;
    // fold them into the pipeline's aggregate so the report and the
    // werror policy see one stream.
    Diags.merge(Engine->diags());
    if (obs::statsEnabled()) {
      obs::StatRegistry &SR = obs::StatRegistry::global();
      if (RefOracle) {
        SR.counter("analysis.region.refs")->add(RefOracle->NumRefs);
        for (const analysis::DepOracleResult *O :
             {RefOracle.get(), TrainOracle.get()}) {
          SR.counter("analysis.oracle.static_confirmed")
              ->add(O->StaticConfirmed);
          SR.counter("analysis.oracle.static_pruned")->add(O->StaticPruned);
          SR.counter("analysis.oracle.static_forced")->add(O->StaticForced);
          SR.counter("analysis.oracle.speculated")->add(O->Speculated);
        }
      }
      if (Plan.Enabled) {
        SR.counter("remedy.pairs_synced")->add(Plan.NumSynced);
        SR.counter("remedy.pairs_speculated")->add(Plan.NumSpeculated);
        SR.counter("remedy.pairs_privatized")->add(Plan.NumPrivatized);
        SR.counter("remedy.pairs_padded")->add(Plan.NumPadded);
        SR.counter("remedy.pairs_reduced")->add(Plan.NumReduced);
        SR.counter("remedy.gate_rejected")->add(Plan.GateRejected);
        SR.counter("remedy.cache_lookups")->add(Plan.CacheLookups);
        SR.counter("remedy.cache_hits")->add(Plan.CacheHits);
      }
    }
  }

  // Phase 4: compiler-synchronized binaries (ref and train profiles).
  // Remedies (when planned) apply after MemSync: the plan's pairs were
  // already excluded from grouping via MSOpts.Plan, and the IR transforms
  // run on the synchronized program so audit + verify see the final form.
  MemSyncOptions MSOpts;
  MSOpts.FreqThresholdPercent = FreqThreshold;
  MSOpts.Plan = Plan.Enabled ? &Plan : nullptr;
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.build_c");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*P, Factor);
    MSOpts.Oracle = RefOracle.get();
    RefMemSync = applyMemSync(*P, Contexts, RefProfile, MSOpts);
    if (Plan.Enabled) {
      ApplyRemediesResult AR = applyRemedies(*P, Plan);
      if (obs::statsEnabled()) {
        obs::StatRegistry &SR = obs::StatRegistry::global();
        SR.counter("remedy.stores_privatized")->add(AR.NumPrivatizedStores);
        SR.counter("remedy.reductions_rewritten")
            ->add(AR.NumReductionsRewritten);
        SR.counter("remedy.reductions_skipped")->add(AR.NumReductionsSkipped);
      }
    }
    RefAudit = auditSignalPlacement(*P, RefMemSync.NumGroups);
    auditToDiags(RefAudit, "C", Diags);
    if (StaticOpts.active())
      analysis::verifyProgramToDiags(*P, Diags);
    checkWerror("C");
    for (const auto &[Name, Group] : RefMemSync.SyncedLoadSet)
      RefSyncSet.insert({Name.InstId, Name.Context});
    Interpreter I(*P, Contexts);
    I.setTraceArena(&Arena);
    InterpResult R = I.run();
    assert(R.Completed && "C binary did not terminate");
    CTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }
  {
    obs::ScopedPhaseTimer Timer("harness.prepare.build_t");
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*P, Factor);
    MSOpts.Oracle = TrainOracle.get();
    TrainMemSync = applyMemSync(*P, Contexts, TrainProfile, MSOpts);
    if (Plan.Enabled)
      applyRemedies(*P, Plan);
    TrainAudit = auditSignalPlacement(*P, TrainMemSync.NumGroups);
    auditToDiags(TrainAudit, "T", Diags);
    if (StaticOpts.active())
      analysis::verifyProgramToDiags(*P, Diags);
    checkWerror("T");
    Interpreter I(*P, Contexts);
    I.setTraceArena(&Arena);
    InterpResult R = I.run();
    assert(R.Completed && "T binary did not terminate");
    TTrace = std::make_unique<ProgramTrace>(std::move(R.Trace));
  }

  Prepared = true;
}

/// Applies the pipeline's werror policy after a build's checks ran: with
/// AuditWerror (the default, keeping CI strict) any accumulated error
/// diagnostic stops the run; otherwise findings are printed and the
/// pipeline continues, matching the lint-not-assert contract.
void BenchmarkPipeline::checkWerror(const char *Binary) {
  // Print findings that arrived since the last check (notes are kept for
  // the JSON report only; stderr gets warnings and errors).
  for (size_t I = DiagsReported; I < Diags.diags().size(); ++I) {
    const analysis::Diag &D = Diags.diags()[I];
    if (D.Severity != analysis::DiagSeverity::Note)
      std::cerr << Bench.Name << ": " << D.render() << "\n";
  }
  DiagsReported = Diags.diags().size();
  if (StaticOpts.AuditWerror && Diags.hasErrors()) {
    std::cerr << "fatal: " << Diags.numErrors() << " analysis error(s) on "
              << Bench.Name << " (" << Binary
              << " binary); rerun with --audit-no-werror to continue\n";
    std::abort();
  }
}

TLSSimResult
BenchmarkPipeline::sequentialFallback(const TLSSimResult &Attempt,
                                      const RegionTrace &Region,
                                      size_t RegionIdx) const {
  TLSSimResult S = Attempt; // Keep the fault/watchdog accounting.
  S.Completed = true;
  S.DegradedToSequential = true;
  uint64_t SeqCycles = RegionIdx < SeqBaseline.RegionCycles.size()
                           ? SeqBaseline.RegionCycles[RegionIdx]
                           : Attempt.Cycles;
  S.Cycles = SeqCycles;
  S.Slots.Total =
      SeqCycles * Config.IssueWidth * Config.NumCores;
  uint64_t Insts = 0;
  for (const EpochTrace &E : Region.Epochs)
    Insts += E.Insts.size();
  S.Slots.Busy = std::min(Insts, S.Slots.Total);
  S.Slots.Fail = 0;
  S.Slots.SyncScalar = 0;
  S.Slots.SyncMem = 0;
  S.EpochsCommitted = Region.Epochs.size();
  return S;
}

ModeRunResult BenchmarkPipeline::simulate(const ProgramTrace &Trace,
                                          TLSSimOptions Opts, ExecMode Mode) {
  Opts.NumScalarChannels = NumScalarChannels;
  Opts.CompilerSyncSet = &RefSyncSet;

  bool Robustness = Robust.active();
  if (Robustness) {
    Opts.Faults = &Robust.Plan;
    Opts.WatchdogBudget = Robust.WatchdogBudget;
    Opts.WatchdogBackoffBase = Robust.WatchdogBackoffBase;
    Opts.EpochRetryLimit = Robust.EpochRetryLimit;
    Opts.GroupDemoteThreshold = Robust.GroupDemoteThreshold;
    Opts.DegradeSquashRate = Robust.DegradeSquashRate;
  }

  // Each (benchmark, mode) run gets its own timeline track group so the
  // trace viewer shows one row of core tracks per simulated binary.
  obs::TraceLog &TL = obs::TraceLog::global();
  if (TL.active())
    TL.beginProcess(Bench.Name + "/" + modeName(Mode));
  obs::EventLog &Ev = obs::EventLog::global();
  bool EventsOn = Ev.active();
  uint64_t EvStartSeq = 0;
  if (EventsOn) {
    Ev.beginRun(Bench.Name + "/" + std::string(modeName(Mode)));
    EvStartSeq = Ev.nextSeq();
  }
  obs::ScopedPhaseTimer Timer(std::string("harness.run.") + modeName(Mode));
  Timer.setItems(Trace.numRegionDynInsts());

  ModeRunResult Result;
  Result.Mode = Mode;
  // What the simulator actually did, before degraded regions are swapped
  // for the sequential fallback — the accumulation the event stream
  // reconciles against.
  TLSSimResult RawSim;
  TLSSimulator Sim(Config, Opts);
  for (size_t I = 0; I < Trace.Regions.size(); ++I) {
    TLSSimResult SR = Sim.simulateRegion(Trace.Regions[I]);
    if (EventsOn)
      RawSim.accumulate(SR);
    // Graceful degradation: when the watchdog gave up on a region (or a
    // faulted run failed to complete), charge the region at its
    // sequential-baseline timing instead of the broken parallel attempt.
    if (Robustness && (SR.DegradedToSequential || !SR.Completed)) {
      SR = sequentialFallback(SR, Trace.Regions[I], I);
      ++Result.DegradedRegions;
      if (obs::statsEnabled())
        obs::StatRegistry::global()
            .counter("harness.degraded_regions")
            ->add(1);
    }
    Result.Sim.accumulate(SR);
  }
  if (EventsOn) {
    auto F = std::make_shared<ForensicsResult>();
    std::vector<obs::SpecEvent> Events = Ev.eventsSince(EvStartSeq);
    F->EventCount = Events.size();
    F->DroppedEvents =
        Ev.firstSeq() > EvStartSeq ? Ev.firstSeq() - EvStartSeq : 0;
    F->Attribution = obs::attributeSquashes(Events, Config.IssueWidth);
    F->CriticalPath = obs::analyzeCriticalPath(Events);
    F->RawSim = RawSim;
    Result.Forensics = std::move(F);
  }
  if (Robustness) {
    Result.FaultsActive = Robust.Plan.enabled();
    Result.FaultSeed = Robust.Plan.Seed;
  }

  Result.SeqRegionCycles = SeqBaseline.regionCyclesTotal();
  Result.CoveragePercent = RefLoop.coveragePercent();
  Result.SeqRegionSpeedup = Bench.SeqDilation;

  // Whole-program accounting: sequential portions dilated by the modeled
  // instrumentation artifact, regions replaced by their parallel time.
  double DilatedSeq =
      static_cast<double>(SeqBaseline.SeqCycles) / Bench.SeqDilation;
  double Par = DilatedSeq + static_cast<double>(Result.Sim.Cycles);
  if (Par > 0)
    Result.ProgramSpeedup =
        static_cast<double>(SeqBaseline.TotalCycles) / Par;
  return Result;
}

ModeRunResult BenchmarkPipeline::run(ExecMode Mode) {
  RunStep Step;
  Step.Robust = Robust;
  Step.Mode = Mode;
  return runStep(Step);
}

ModeRunResult BenchmarkPipeline::runWithPerfectLoads(double Percent) {
  RunStep Step;
  Step.Robust = Robust;
  Step.Perfect = true;
  Step.Percent = Percent;
  return runStep(Step);
}

rt::RtRunResult BenchmarkPipeline::runThreads(ExecMode Mode,
                                              const rt::RtOptions &O) {
  prepare();
  assert((Mode == ExecMode::U || Mode == ExecMode::C ||
          Mode == ExecMode::T) &&
         "threads backend runs real binaries only (U/C/T)");

  unsigned Factor = Selection.Selected ? Selection.UnrollFactor : 1;
  // Deterministic rebuild of the mode binary. Builds are byte-identical
  // per call, so the oracle-recording run and the threaded run execute the
  // same decoded program — and the cached prepare() trace of the same mode
  // is its committed execution, usable as the replay reference.
  auto makeBinary = [&] {
    std::unique_ptr<Program> P = Bench.Build(InputKind::Ref);
    applyBaseTransforms(*P, Factor);
    if (Mode != ExecMode::U) {
      MemSyncOptions MSOpts;
      MSOpts.FreqThresholdPercent = FreqThreshold;
      MSOpts.Oracle = Mode == ExecMode::C ? RefOracle.get() : TrainOracle.get();
      MSOpts.Plan = Plan.Enabled ? &Plan : nullptr;
      applyMemSync(*P, Contexts,
                   Mode == ExecMode::C ? RefProfile : TrainProfile, MSOpts);
      if (Plan.Enabled)
        applyRemedies(*P, Plan);
    }
    return P;
  };
  // The remedy plan's pad set travels with the remedied binaries (U stays
  // unremedied, matching the simulator paths).
  rt::RtOptions RtOpts = O;
  if (Mode != ExecMode::U && Plan.Enabled && !Plan.Pads.empty())
    RtOpts.Pads = &Plan.Pads;
  auto wallMs = [](std::chrono::steady_clock::time_point Since) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Since)
        .count();
  };

  rt::RtRunResult R;
  obs::ScopedPhaseTimer Timer("harness.run.rt");

  // Sequential reference run: records the region oracle (per-epoch entry
  // frames / RNG states, exit continuations) and the final-memory checksum
  // the threaded run must reproduce.
  RegionOracle Oracle;
  {
    std::unique_ptr<Program> P = makeBinary();
    Interpreter I(*P, Contexts);
    InterpOptions IOpts;
    IOpts.CollectTrace = false;
    IOpts.RecordOracle = &Oracle;
    auto T0 = std::chrono::steady_clock::now();
    InterpResult SR = I.run(IOpts);
    R.SeqWallMs = wallMs(T0);
    assert(SR.Completed && "sequential oracle run did not terminate");
    R.SeqChecksum = SR.MemoryChecksum;
  }

  obs::EventLog &Ev = obs::EventLog::global();
  bool EventsOn = Ev.active();
  uint64_t EvStartSeq = 0;
  if (EventsOn) {
    Ev.beginRun(Bench.Name + "/" + std::string(modeName(Mode)) + "/rt");
    EvStartSeq = Ev.nextSeq();
  }

  // Threaded run: the interpreter delegates every region instance to the
  // coordinator, which farms epochs out to the worker pool.
  {
    std::unique_ptr<Program> P = makeBinary();
    // Worker epoch attempts run on the Spec-mode native tier when the
    // session engine is Native; the module shares P's decoded form, so
    // it stays valid for the engine's lifetime.
    if (defaultInterpEngine() == InterpEngine::Native &&
        nativeBackendAvailable())
      RtOpts.Native = P->getNative().module(NativeMode::Spec);
    rt::RtEngine Engine(P->getDecoded(), Oracle, RtOpts);
    Interpreter I(*P, Contexts);
    InterpOptions IOpts;
    IOpts.CollectTrace = false;
    IOpts.RegionHook = &Engine;
    auto T0 = std::chrono::steady_clock::now();
    InterpResult TR = I.run(IOpts);
    R.RtWallMs = wallMs(T0);
    R.Completed = TR.Completed;
    R.RtChecksum = TR.MemoryChecksum;
    R.ChecksumMatch = R.Completed && R.RtChecksum == R.SeqChecksum;
    Engine.fill(R);

    // Replay reference over the cached committed trace, with the window
    // geometry the live run used. Regions the engine runs sequentially
    // (ret-exit or zero-epoch instances) are excluded on both sides.
    const ProgramTrace &Trace = *(Mode == ExecMode::C   ? CTrace
                                  : Mode == ExecMode::T ? TTrace
                                                        : UTrace);
    size_t NumRegions = std::min(Trace.Regions.size(), Oracle.Regions.size());
    for (size_t RI = 0; RI < NumRegions; ++RI) {
      const RegionOracleRec &Rec = Oracle.Regions[RI];
      if (Rec.ExitViaRet || Rec.Epochs.empty())
        continue;
      R.Replay += rt::replayRegion(Trace.Regions[RI], Engine.window(),
                                   RtOpts.LineShift, RtOpts.Pads);
    }
    R.CountsMatch = R.Counts == R.Replay;

    if (EventsOn) {
      auto F = std::make_shared<ForensicsResult>();
      std::vector<obs::SpecEvent> Events = Ev.eventsSince(EvStartSeq);
      F->EventCount = Events.size();
      F->DroppedEvents =
          Ev.firstSeq() > EvStartSeq ? Ev.firstSeq() - EvStartSeq : 0;
      // The coordinator thread is the only event emitter and stamps one
      // logical cycle per slot, so the attribution runs at issue width 1.
      F->Attribution = obs::attributeSquashes(Events, /*IssueWidth=*/1);
      F->CriticalPath = obs::analyzeCriticalPath(Events);
      F->RawSim = Engine.rawSim();
      R.Forensics = std::move(F);
    }
  }

  if (obs::statsEnabled()) {
    obs::StatRegistry &SR = obs::StatRegistry::global();
    SR.counter("rt.regions_parallel")->add(R.RegionsParallel);
    SR.counter("rt.regions_sequential")->add(R.RegionsSequential);
    SR.counter("rt.regions_demoted")->add(R.RegionsDemoted);
    SR.counter("rt.epochs_committed")->add(R.Counts.EpochsCommitted);
    SR.counter("rt.epochs_squashed")->add(R.Counts.EpochsSquashed);
    SR.counter("rt.violations")->add(R.Counts.Violations);
    SR.counter("rt.sab_violations")->add(R.Counts.SabViolations);
    SR.counter("rt.sync_stalls_scalar")->add(R.Counts.SyncStallsScalar);
    SR.counter("rt.sync_stalls_mem")->add(R.Counts.SyncStallsMem);
    SR.counter("rt.wasted_steps")->add(R.WastedSteps);
    SR.counter("rt.watchdog_trips")->add(R.WatchdogTrips);
    SR.counter("rt.backoff_retries")->add(R.BackoffRetries);
    SR.counter("rt.counts_match")->add(R.CountsMatch ? 1 : 0);
    SR.counter("rt.checksum_match")->add(R.ChecksumMatch ? 1 : 0);
  }
  return R;
}

ModeRunResult BenchmarkPipeline::runStep(const RunStep &Step) {
  if (RecordPlan)
    RecordPlan->push_back(Step);

  ModeRunResult Out;
  if (consumePrecomputed(Step, Out))
    return Out;

  std::string Key;
  if (cacheUsable()) {
    Key = cacheKey(Step);
    if (std::optional<CachedRun> E = Cache->lookup(Key)) {
      restoreWorkloadSeed(E->WorkloadSeed);
      return E->Result;
    }
  }

  Out = simulateStep(Step);
  if (!Key.empty())
    Cache->store(Key, {Out, WorkloadSeed});
  return Out;
}

ModeRunResult BenchmarkPipeline::simulateStep(const RunStep &Step) {
  prepare();

  if (Step.Perfect) {
    LoadNameSet Immune; // Outlives the simulate() call below.
    for (const RefName &Name : RefProfile.loadsAboveThreshold(Step.Percent))
      Immune.insert({Name.InstId, Name.Context});
    TLSSimOptions Opts;
    Opts.ImmuneLoads = &Immune;
    return simulate(*UTrace, Opts, ExecMode::U);
  }

  TLSSimOptions Opts;
  const ProgramTrace *Trace = UTrace.get();
  // Every mode tracing a remedied binary (CTrace/TTrace-based) carries the
  // plan's pad set so conflict granules match the binary's remedies.
  const conflict::PadSet *RemedyPads =
      Plan.Enabled && !Plan.Pads.empty() ? &Plan.Pads : nullptr;
  switch (Step.Mode) {
  case ExecMode::U:
    break;
  case ExecMode::O:
    Opts.OraclePerfectMemory = true;
    break;
  case ExecMode::T:
    Trace = TTrace.get();
    Opts.NumMemGroups = TrainMemSync.NumGroups;
    Opts.Pads = RemedyPads;
    break;
  case ExecMode::C:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.Pads = RemedyPads;
    break;
  case ExecMode::E:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.Pads = RemedyPads;
    Opts.PerfectSyncedValues = true;
    break;
  case ExecMode::L:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.Pads = RemedyPads;
    Opts.StallSyncedUntilDone = true;
    break;
  case ExecMode::P:
    Opts.HwValuePredict = true;
    break;
  case ExecMode::H:
    Opts.HwSyncStall = true;
    break;
  case ExecMode::B:
    Trace = CTrace.get();
    Opts.NumMemGroups = RefMemSync.NumGroups;
    Opts.Pads = RemedyPads;
    Opts.HwSyncStall = true;
    break;
  }
  return simulate(*Trace, Opts, Step.Mode);
}

bool BenchmarkPipeline::consumePrecomputed(const RunStep &Step,
                                           ModeRunResult &Out) {
  if (Precomputed.empty())
    return false;
  const PrecomputedRun &Front = Precomputed.front();
  if (Front.Step.Perfect != Step.Perfect || Front.Step.Mode != Step.Mode ||
      Front.Step.Percent != Step.Percent || Front.Step.Robust != Step.Robust)
    return false;
  Out = Front.Result;
  Precomputed.pop_front();
  return true;
}

bool BenchmarkPipeline::cacheUsable() const {
  // Observability sinks see nothing from a cached run, and an injected
  // train profile's contents are not part of the key; both force live
  // simulation.
  return Cache && Cache->valid() && !TrainOverride && !obs::statsEnabled() &&
         !obs::TraceLog::global().active() &&
         !obs::EventLog::global().active();
}

std::string BenchmarkPipeline::cacheKey(const RunStep &Step) const {
  auto bits = [](double D) {
    uint64_t U;
    std::memcpy(&U, &D, sizeof(U));
    return U;
  };
  std::ostringstream OS;
  OS << "v=" << ResultCacheSchema;
  OS << "|w=" << Bench.Name << "|dil=" << bits(Bench.SeqDilation);
  const MachineConfig &C = Config;
  OS << "|cores=" << C.NumCores << "|iw=" << C.IssueWidth
     << "|rob=" << C.ReorderBuffer << "|mul=" << C.IntMulLatency
     << "|div=" << C.IntDivLatency << "|line=" << C.CacheLineBytes
     << "|l1=" << C.L1SizeKB << "," << C.L1Assoc << "," << C.L1HitLatency
     << "|l2=" << C.L2SizeKB << "," << C.L2Assoc << "," << C.L2HitLatency
     << "|mem=" << C.MemLatency << "|spawn=" << C.EpochSpawnOverhead
     << "|vdet=" << C.ViolationDetectLatency
     << "|vpen=" << C.ViolationRestartPenalty
     << "|commit=" << C.CommitLatency << "|sig=" << C.SignalLatency
     << "|sab=" << C.SignalAddrBufferEntries
     << "|hwt=" << C.HwSyncTableEntries << "," << C.HwSyncResetInterval
     << "|pred=" << C.PredictorTableEntries;
  OS << "|freq=" << bits(FreqThreshold);
  // Shadow sharding is result-invariant, so Shards is deliberately not
  // part of the key: sampled results cache-hit across --jobs values.
  OS << "|psample=" << SamplingOpts.SampleEvery << ","
     << SamplingOpts.SampleSeed << "," << SamplingOpts.MinObserveEpochs;
  OS << "|oracle=" << StaticOpts.EnableOracle
     << "|remedies=" << StaticOpts.EnableRemedies
     << "|werror=" << StaticOpts.AuditWerror
     << "|stale=" << StaticOpts.InjectStalePair;
  const RobustnessOptions &R = Step.Robust;
  OS << "|fseed=" << R.Plan.Seed << "|fdrop=" << bits(R.Plan.SignalDropPct)
     << "|fdelay=" << bits(R.Plan.SignalDelayPct) << ","
     << R.Plan.SignalDelayCycles
     << "|fcorrupt=" << bits(R.Plan.SignalCorruptPct)
     << "|fmiss=" << bits(R.Plan.MispredictPct)
     << "|fspur=" << bits(R.Plan.SpuriousViolationPct)
     << "|fhw=" << bits(R.Plan.HwUpdateDropPct)
     << "|wbudget=" << R.WatchdogBudget
     << "|wbackoff=" << R.WatchdogBackoffBase
     << "|wretry=" << R.EpochRetryLimit
     << "|wdemote=" << R.GroupDemoteThreshold
     << "|wdegrade=" << bits(R.DegradeSquashRate);
  // Engine choice cannot change any cached result (the tiers are
  // differentially verified bit-equal), but keying on it keeps a stale
  // entry from masking a tier divergence while one is being debugged.
  OS << "|engine=" << interpEngineName(defaultInterpEngine());
  if (Step.Perfect)
    OS << "|step=perfect," << bits(Step.Percent);
  else
    OS << "|step=mode," << modeName(Step.Mode);
  return OS.str();
}
