//===- harness/Pipeline.h - Benchmark pipeline driver ----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one benchmark through the full methodology:
///  1. profile the original program (loop selection + unroll factor),
///  2. apply the base TLS transforms (unroll + scalar sync) and gather
///     train- and ref-input dependence profiles with a shared context
///     table,
///  3. time the original sequential program (normalization baseline),
///  4. build per-mode binaries (memory sync from the chosen profile),
///     interpret them to traces, and run the TLS timing simulator.
///
/// Traces are cached: all hardware-side modes share the U binary's trace,
/// and C/E/L/B share the ref-profiled binary's trace.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_PIPELINE_H
#define SPECSYNC_HARNESS_PIPELINE_H

#include "analysis/Remediator.h"
#include "analysis/StaticAnalysis.h"
#include "compiler/LoopSelection.h"
#include "compiler/MemSync.h"
#include "compiler/SignalAudit.h"
#include "harness/Experiment.h"
#include "interp/ContextTable.h"
#include "profile/DepProfiler.h"
#include "profile/LoopProfiler.h"
#include "rt/RtOptions.h"
#include "sim/SeqSimulator.h"
#include "workloads/Workload.h"

#include <deque>
#include <memory>
#include <vector>

namespace specsync {

class ResultCache;

class BenchmarkPipeline {
public:
  BenchmarkPipeline(const Workload &W, const MachineConfig &Config,
                    double FreqThresholdPercent = 5.0);

  /// Runs phases 1-4 (profiling, baselines, builds). Idempotent; run()
  /// calls it lazily, so explicit calls are only needed before using the
  /// introspection accessors without running a mode.
  void prepare();
  bool prepared() const { return Prepared; }

  /// Runs one execution mode on the ref input. Consults the precomputed
  /// queue, then the result cache, then prepares (if needed) and
  /// simulates.
  ModeRunResult run(ExecMode Mode);

  /// Attaches a content-addressed result cache: run() returns cached
  /// results without preparing or simulating, and stores fresh ones. The
  /// cache is bypassed while an observability sink is active (a cached
  /// run records no stats or trace events) and when a train-profile
  /// override is installed (its contents are not part of the key).
  void setResultCache(ResultCache *C) { Cache = C; }

  /// Capture mode (experiment runner, cell 0): every run() /
  /// runWithPerfectLoads() call appends its descriptor to \p Plan while
  /// executing normally.
  void setRecordPlan(std::vector<RunStep> *Plan) { RecordPlan = Plan; }

  /// Replay mode (experiment runner, worker-prepared cells): run() calls
  /// whose descriptor matches the front of \p Runs consume it instead of
  /// simulating; mismatches fall back to live simulation.
  void setPrecomputed(std::vector<PrecomputedRun> Runs) {
    Precomputed.assign(Runs.begin(), Runs.end());
  }

  /// Restores pipeline-level state a cache hit carries (the workload PRNG
  /// seed) into a pipeline that skipped prepare(). No-op once prepared.
  void restoreWorkloadSeed(uint64_t Seed) {
    if (!Prepared)
      WorkloadSeed = Seed;
  }

  /// Applies fault-injection / watchdog settings to subsequent run() calls.
  /// With the default (inert) options every simulation is bit-identical to
  /// a pipeline without the robustness subsystem.
  void setRobustness(const RobustnessOptions &R) { Robust = R; }
  const RobustnessOptions &robustness() const { return Robust; }

  /// Configures epoch sampling for both dependence-profiling runs (train
  /// and ref); call before prepare(). With the default (exact) options the
  /// profiles — and everything built from them — are bit-identical to a
  /// pipeline without the sampling subsystem. Shards only parallelizes the
  /// profiler's shadow processing; it never affects results.
  void setSampling(const ProfileSamplingOptions &S) { SamplingOpts = S; }
  const ProfileSamplingOptions &sampling() const { return SamplingOpts; }

  /// Replaces the train-input dependence profile (e.g. one parsed from a
  /// file) after the profiling phases run; call before prepare(). Context
  /// ids in the profile must match this workload's context numbering, as
  /// produced by serializeDepProfile on the same workload.
  void setTrainProfile(DepProfile P);

  /// Configures the static-analysis engine / DepOracle and the audit
  /// werror policy; call before prepare(). With the defaults (oracle off)
  /// the compiled binaries are bit-identical to a pipeline without the
  /// analysis subsystem.
  void setStaticAnalysis(const analysis::StaticAnalysisOptions &O) {
    StaticOpts = O;
  }
  const analysis::StaticAnalysisOptions &staticAnalysis() const {
    return StaticOpts;
  }

  /// Figure 2/6 limit study: U-mode execution with perfect prediction of
  /// all loads whose dependence frequency exceeds \p Percent.
  ModeRunResult runWithPerfectLoads(double Percent);

  /// Real-threads backend: runs the mode binary with its parallel regions
  /// executed on actual OS threads (src/rt/) instead of the timing
  /// simulator, then cross-validates the run three ways — final-memory
  /// checksum against a sequential run of the same binary, protocol counts
  /// against the trace-driven replay reference, and (when the event ledger
  /// is active) ledger analyses against the coordinator's raw accounting.
  /// Only the modes naming real binaries are supported: U (base
  /// transforms), C (ref-profile memory sync) and T (train-profile memory
  /// sync); the remaining modes are simulator-only idealizations.
  rt::RtRunResult runThreads(ExecMode Mode, const rt::RtOptions &O);

  // Introspection for benches and tests.
  const LoopProfile &loopProfile() const { return RefLoop; }
  const LoopSelectionResult &selection() const { return Selection; }
  const DepProfile &refProfile() const { return RefProfile; }
  const DepProfile &trainProfile() const { return TrainProfile; }
  const MemSyncResult &refMemSync() const { return RefMemSync; }
  const MemSyncResult &trainMemSync() const { return TrainMemSync; }
  const SeqSimResult &seqBaseline() const { return SeqBaseline; }
  unsigned numScalarChannels() const { return NumScalarChannels; }
  const Workload &workload() const { return Bench; }
  /// The workload's PRNG seed (recorded for replay in JSON reports).
  uint64_t workloadSeed() const { return WorkloadSeed; }
  /// Signal-placement audits of the ref- and train-profiled binaries.
  const SignalAuditResult &refAudit() const { return RefAudit; }
  const SignalAuditResult &trainAudit() const { return TrainAudit; }
  /// Oracle verdict tables for the C (ref-profile) and T (train-profile)
  /// builds; null unless the oracle was enabled before prepare().
  const analysis::DepOracleResult *refOracle() const {
    return RefOracle.get();
  }
  const analysis::DepOracleResult *trainOracle() const {
    return TrainOracle.get();
  }
  /// The remediator plan applied to the C and T builds (Enabled=false and
  /// empty unless --static-remedies was set before prepare()). Stable
  /// address: backends hold pointers into its PadSet across runs.
  const analysis::RemedyPlan &remedyPlan() const { return Plan; }
  /// Structured diagnostics accumulated by the analysis engine, the
  /// verifier bridge and the signal-placement audit during prepare().
  const analysis::DiagEngine &analysisDiags() const { return Diags; }
  /// The engine itself (alias sets, enumerated refs); null unless the
  /// oracle was enabled before prepare().
  const analysis::StaticAnalysisEngine *staticEngine() const {
    return Engine.get();
  }

private:
  ModeRunResult simulate(const ProgramTrace &Trace, TLSSimOptions Opts,
                         ExecMode Mode);
  /// Dispatches one run step through the precomputed queue, the cache,
  /// or a live simulation (the body shared by run and runWithPerfectLoads).
  ModeRunResult runStep(const RunStep &Step);
  ModeRunResult simulateStep(const RunStep &Step);
  /// True when consulting/feeding the result cache is sound right now.
  bool cacheUsable() const;
  /// The full key material for \p Step (workload, config, options, step).
  std::string cacheKey(const RunStep &Step) const;
  /// Pops the front of the precomputed queue if it matches \p Step.
  bool consumePrecomputed(const RunStep &Step, ModeRunResult &Out);
  /// Synthetic per-region result standing in for a degraded parallel
  /// attempt: the region's sequential-baseline timing with the attempt's
  /// fault/watchdog accounting preserved.
  TLSSimResult sequentialFallback(const TLSSimResult &Attempt,
                                  const RegionTrace &Region,
                                  size_t RegionIdx) const;
  /// Prints new diagnostics and aborts on errors when werror is active.
  void checkWerror(const char *Binary);

  const Workload &Bench;
  const MachineConfig &Config;
  double FreqThreshold;
  RobustnessOptions Robust;
  ProfileSamplingOptions SamplingOpts; ///< Set via setSampling.

  ContextTable Contexts;
  /// Recycles DynInst buffers between the trace-collecting runs: the
  /// sequential baseline's trace is consumed by the simulator and its
  /// buffers feed the C and T binary runs instead of being freed.
  TraceArena Arena;
  LoopProfile RefLoop;
  LoopSelectionResult Selection;
  DepProfile TrainProfile;
  DepProfile RefProfile;
  MemSyncResult RefMemSync;
  MemSyncResult TrainMemSync;
  unsigned NumScalarChannels = 0;
  SeqSimResult SeqBaseline;
  uint64_t WorkloadSeed = 0;
  SignalAuditResult RefAudit;
  SignalAuditResult TrainAudit;
  std::unique_ptr<DepProfile> TrainOverride; ///< Set via setTrainProfile.

  analysis::StaticAnalysisOptions StaticOpts;
  analysis::DiagEngine Diags;
  /// The analysis build (base-transformed ref program) must outlive the
  /// engine, which must outlive the oracle results that reference neither.
  std::unique_ptr<Program> AnalysisProg;
  std::unique_ptr<analysis::StaticAnalysisEngine> Engine;
  std::unique_ptr<analysis::DepOracleResult> RefOracle;
  std::unique_ptr<analysis::DepOracleResult> TrainOracle;
  /// Remediator plan built in phase 3.5 from the ref profile (one plan for
  /// both compiler-synchronized builds; U stays unremedied). Owns the
  /// PadSet the simulator and rt backend point into.
  analysis::RemedyPlan Plan;
  size_t DiagsReported = 0; ///< Diags already printed by checkWerror.

  LoadNameSet RefSyncSet;

  // Cached traces (ref input).
  std::unique_ptr<ProgramTrace> UTrace; ///< Base-transformed binary.
  std::unique_ptr<ProgramTrace> CTrace; ///< + mem sync (ref profile).
  std::unique_ptr<ProgramTrace> TTrace; ///< + mem sync (train profile).

  bool Prepared = false;

  // Experiment-runner hooks (all inert by default).
  ResultCache *Cache = nullptr;
  std::vector<RunStep> *RecordPlan = nullptr;
  std::deque<PrecomputedRun> Precomputed;
};

} // namespace specsync

#endif // SPECSYNC_HARNESS_PIPELINE_H
