//===- harness/ResultCache.h - Content-addressed run cache ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk cache of simulated mode runs, keyed by the content of
/// everything that determines the result: the workload, the machine
/// configuration, the sync-frequency threshold, the robustness plan, the
/// static-analysis options, the run step itself, and a schema/code
/// version. The pipeline is deterministic, so a key hit may replace the
/// whole prepare+simulate chain for that step; `specsync_bench --jobs N
/// --cache-dir D` reuses entries across bench invocations.
///
/// Entries are one small text file per key under the cache directory,
/// written atomically (tmp + rename) so concurrent workers — or
/// concurrent bench processes sharing a directory — never observe a
/// partial entry. Each file embeds the full key material; a lookup whose
/// stored material mismatches (hash collision, schema drift) is a miss.
///
/// Doubles are serialized as their IEEE-754 bit patterns, never as
/// decimal text, so a cached result replays bit-identically.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_RESULTCACHE_H
#define SPECSYNC_HARNESS_RESULTCACHE_H

#include "harness/Experiment.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace specsync {

/// Bump whenever the simulator, pipeline, or workload definitions change
/// observable results — stale entries then miss on the key material.
constexpr unsigned ResultCacheSchema = 1;

/// One cached run step: the mode result plus the pipeline-level workload
/// seed (restored into pipelines that skipped prepare()).
struct CachedRun {
  ModeRunResult Result;
  uint64_t WorkloadSeed = 0;
};

/// Exact text serialization (round-trips every bit; see file comment).
std::string serializeCachedRun(const std::string &KeyMaterial,
                               const CachedRun &Run);
/// Returns nullopt on any malformed, truncated or key-mismatched input.
std::optional<CachedRun> deserializeCachedRun(const std::string &KeyMaterial,
                                              const std::string &Text);

/// FNV-1a 64-bit — names the entry file; the embedded key material
/// disambiguates collisions.
uint64_t fnv1a64(const std::string &S);

/// The cache. All methods are safe to call from concurrent workers.
class ResultCache {
public:
  /// Creates \p Dir (one level) if missing. An unusable directory leaves
  /// the cache permanently missing (valid() false) rather than failing.
  explicit ResultCache(std::string Dir);

  bool valid() const { return Ok; }
  const std::string &dir() const { return Directory; }

  std::optional<CachedRun> lookup(const std::string &KeyMaterial);
  void store(const std::string &KeyMaterial, const CachedRun &Run);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t stores() const;

private:
  std::string entryPath(const std::string &KeyMaterial) const;

  std::string Directory;
  bool Ok = false;
  mutable std::mutex M; ///< Guards the counters (file ops are atomic).
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
  uint64_t TmpCounter = 0; ///< Unique tmp-file suffix per store.
};

} // namespace specsync

#endif // SPECSYNC_HARNESS_RESULTCACHE_H
