//===- harness/Experiment.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include <sstream>

using namespace specsync;

bool ForensicsResult::reconciles(std::string *Why) const {
  auto fail = [&](const char *What, uint64_t Ledger, uint64_t Sim) {
    if (Why) {
      std::ostringstream OS;
      OS << What << ": ledger " << Ledger << " != sim " << Sim;
      *Why = OS.str();
    }
    return false;
  };
  if (DroppedEvents != 0)
    return fail("dropped", DroppedEvents, 0);

  const obs::SquashAttributionResult &A = Attribution;
  if (A.Violations != RawSim.Violations)
    return fail("violations", A.Violations, RawSim.Violations);
  if (A.SabViolations != RawSim.SabViolations)
    return fail("sab_violations", A.SabViolations, RawSim.SabViolations);
  if (A.PredictRestarts != RawSim.PredictRestarts)
    return fail("predict_restarts", A.PredictRestarts,
                RawSim.PredictRestarts);
  if (A.CorruptionsDetected != RawSim.CorruptionsDetected)
    return fail("corruptions_detected", A.CorruptionsDetected,
                RawSim.CorruptionsDetected);
  if (A.EpochsCommitted != RawSim.EpochsCommitted)
    return fail("epochs_committed", A.EpochsCommitted,
                RawSim.EpochsCommitted);
  // Spurious squashes have no dedicated sim counter; injector rolls bound
  // them from above (a roll is skipped when the victim is absent or
  // protected).
  if (A.SpuriousViolations > RawSim.Faults.SpuriousViolations)
    return fail("spurious_violations", A.SpuriousViolations,
                RawSim.Faults.SpuriousViolations);
  if (A.FailSlots != RawSim.Slots.Fail)
    return fail("fail_slots", A.FailSlots, RawSim.Slots.Fail);
  if (A.SyncScalarSlots != RawSim.Slots.SyncScalar)
    return fail("sync_scalar_slots", A.SyncScalarSlots,
                RawSim.Slots.SyncScalar);
  if (A.SyncMemSlots != RawSim.Slots.SyncMem)
    return fail("sync_mem_slots", A.SyncMemSlots, RawSim.Slots.SyncMem);
  return true;
}

const char *specsync::modeName(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::U: return "U";
  case ExecMode::O: return "O";
  case ExecMode::T: return "T";
  case ExecMode::C: return "C";
  case ExecMode::E: return "E";
  case ExecMode::L: return "L";
  case ExecMode::P: return "P";
  case ExecMode::H: return "H";
  case ExecMode::B: return "B";
  }
  return "?";
}

double ModeRunResult::normalizedRegionTime() const {
  if (SeqRegionCycles == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Sim.Cycles) /
         static_cast<double>(SeqRegionCycles);
}

static double segmentPct(const ModeRunResult &R, uint64_t Slots) {
  if (R.Sim.Slots.Total == 0)
    return 0.0;
  return R.normalizedRegionTime() * static_cast<double>(Slots) /
         static_cast<double>(R.Sim.Slots.Total);
}

double ModeRunResult::busyPct() const { return segmentPct(*this, Sim.Slots.Busy); }
double ModeRunResult::failPct() const { return segmentPct(*this, Sim.Slots.Fail); }
double ModeRunResult::syncPct() const { return segmentPct(*this, Sim.Slots.sync()); }
double ModeRunResult::otherPct() const { return segmentPct(*this, Sim.Slots.other()); }

double ModeRunResult::regionSpeedup() const {
  if (Sim.Cycles == 0)
    return 0.0;
  return static_cast<double>(SeqRegionCycles) /
         static_cast<double>(Sim.Cycles);
}
