//===- harness/Experiment.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

using namespace specsync;

const char *specsync::modeName(ExecMode Mode) {
  switch (Mode) {
  case ExecMode::U: return "U";
  case ExecMode::O: return "O";
  case ExecMode::T: return "T";
  case ExecMode::C: return "C";
  case ExecMode::E: return "E";
  case ExecMode::L: return "L";
  case ExecMode::P: return "P";
  case ExecMode::H: return "H";
  case ExecMode::B: return "B";
  }
  return "?";
}

double ModeRunResult::normalizedRegionTime() const {
  if (SeqRegionCycles == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Sim.Cycles) /
         static_cast<double>(SeqRegionCycles);
}

static double segmentPct(const ModeRunResult &R, uint64_t Slots) {
  if (R.Sim.Slots.Total == 0)
    return 0.0;
  return R.normalizedRegionTime() * static_cast<double>(Slots) /
         static_cast<double>(R.Sim.Slots.Total);
}

double ModeRunResult::busyPct() const { return segmentPct(*this, Sim.Slots.Busy); }
double ModeRunResult::failPct() const { return segmentPct(*this, Sim.Slots.Fail); }
double ModeRunResult::syncPct() const { return segmentPct(*this, Sim.Slots.sync()); }
double ModeRunResult::otherPct() const { return segmentPct(*this, Sim.Slots.other()); }

double ModeRunResult::regionSpeedup() const {
  if (Sim.Cycles == 0)
    return 0.0;
  return static_cast<double>(SeqRegionCycles) /
         static_cast<double>(Sim.Cycles);
}
