//===- harness/ResultCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/ResultCache.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace specsync;

uint64_t specsync::fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

/// Doubles travel as bit patterns: decimal text would round.
uint64_t bitsOf(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

double doubleOf(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

void emit(std::ostringstream &OS, const char *Name, uint64_t V) {
  OS << Name << ' ' << V << '\n';
}

void emitD(std::ostringstream &OS, const char *Name, double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(bitsOf(V)));
  OS << Name << ' ' << Buf << '\n';
}

/// Strict line reader: each expected field must appear, in order, with
/// the expected name. The same code writes and reads the format, so any
/// divergence means a stale or damaged entry.
class FieldReader {
public:
  explicit FieldReader(std::istringstream &IS) : IS(IS) {}

  bool read(const char *Name, uint64_t &Out) {
    std::string Line;
    if (!std::getline(IS, Line))
      return false;
    size_t Sp = Line.find(' ');
    if (Sp == std::string::npos || Line.compare(0, Sp, Name) != 0)
      return false;
    errno = 0;
    char *End = nullptr;
    const char *Val = Line.c_str() + Sp + 1;
    unsigned long long V = std::strtoull(Val, &End, 10);
    if (End == Val || *End != '\0' || errno != 0)
      return false;
    Out = V;
    return true;
  }

  bool readD(const char *Name, double &Out) {
    std::string Line;
    if (!std::getline(IS, Line))
      return false;
    size_t Sp = Line.find(' ');
    if (Sp == std::string::npos || Line.compare(0, Sp, Name) != 0)
      return false;
    const std::string Val = Line.substr(Sp + 1);
    if (Val.size() != 16 ||
        Val.find_first_not_of("0123456789abcdef") != std::string::npos)
      return false;
    Out = doubleOf(std::strtoull(Val.c_str(), nullptr, 16));
    return true;
  }

private:
  std::istringstream &IS;
};

} // namespace

std::string specsync::serializeCachedRun(const std::string &KeyMaterial,
                                         const CachedRun &Run) {
  const ModeRunResult &R = Run.Result;
  const TLSSimResult &S = R.Sim;
  std::ostringstream OS;
  OS << "specsync-result-cache " << ResultCacheSchema << '\n';
  OS << "key " << KeyMaterial << '\n';
  emit(OS, "workload_seed", Run.WorkloadSeed);
  emit(OS, "mode", static_cast<uint64_t>(R.Mode));
  emit(OS, "seq_region_cycles", R.SeqRegionCycles);
  emitD(OS, "program_speedup", R.ProgramSpeedup);
  emitD(OS, "coverage_percent", R.CoveragePercent);
  emitD(OS, "seq_region_speedup", R.SeqRegionSpeedup);
  emit(OS, "faults_active", R.FaultsActive ? 1 : 0);
  emit(OS, "fault_seed", R.FaultSeed);
  emit(OS, "degraded_regions", R.DegradedRegions);
  emit(OS, "completed", S.Completed ? 1 : 0);
  emit(OS, "cycles", S.Cycles);
  emit(OS, "slots_busy", S.Slots.Busy);
  emit(OS, "slots_fail", S.Slots.Fail);
  emit(OS, "slots_sync_scalar", S.Slots.SyncScalar);
  emit(OS, "slots_sync_mem", S.Slots.SyncMem);
  emit(OS, "slots_total", S.Slots.Total);
  emit(OS, "epochs_committed", S.EpochsCommitted);
  emit(OS, "violations", S.Violations);
  emit(OS, "sab_violations", S.SabViolations);
  emit(OS, "predict_restarts", S.PredictRestarts);
  emit(OS, "viol_compiler_only", S.ViolCompilerOnly);
  emit(OS, "viol_hw_only", S.ViolHwOnly);
  emit(OS, "viol_both", S.ViolBoth);
  emit(OS, "viol_neither", S.ViolNeither);
  emit(OS, "sab_max_occupancy", S.SabMaxOccupancy);
  emit(OS, "sab_overflows", S.SabOverflows);
  emit(OS, "hw_table_resets", S.HwTableResets);
  emit(OS, "predictor_correct", S.PredictorCorrect);
  emit(OS, "predictor_wrong", S.PredictorWrong);
  emit(OS, "filtered_waits", S.FilteredWaits);
  emit(OS, "fault_signal_drops", S.Faults.SignalDrops);
  emit(OS, "fault_signal_delays", S.Faults.SignalDelays);
  emit(OS, "fault_corruptions", S.Faults.Corruptions);
  emit(OS, "fault_mispredicts", S.Faults.Mispredicts);
  emit(OS, "fault_spurious_violations", S.Faults.SpuriousViolations);
  emit(OS, "fault_hw_drops", S.Faults.HwDrops);
  emit(OS, "watchdog_trips", S.WatchdogTrips);
  emit(OS, "watchdog_wakes", S.WatchdogWakes);
  emit(OS, "corruptions_detected", S.CorruptionsDetected);
  emit(OS, "backoff_retries", S.BackoffRetries);
  emit(OS, "livelock_breaks", S.LivelockBreaks);
  emit(OS, "demoted_syncs", S.DemotedSyncs);
  emit(OS, "demoted_waits", S.DemotedWaits);
  emit(OS, "degraded_to_sequential", S.DegradedToSequential ? 1 : 0);
  OS << "end\n";
  return OS.str();
}

std::optional<CachedRun>
specsync::deserializeCachedRun(const std::string &KeyMaterial,
                               const std::string &Text) {
  std::istringstream IS(Text);
  std::string Line;
  if (!std::getline(IS, Line) ||
      Line != "specsync-result-cache " + std::to_string(ResultCacheSchema))
    return std::nullopt;
  if (!std::getline(IS, Line) || Line != "key " + KeyMaterial)
    return std::nullopt;

  CachedRun Run;
  ModeRunResult &R = Run.Result;
  TLSSimResult &S = R.Sim;
  FieldReader F(IS);
  uint64_t U = 0;

  auto readBool = [&](const char *Name, bool &B) {
    if (!F.read(Name, U) || U > 1)
      return false;
    B = U != 0;
    return true;
  };
  auto readMode = [&]() {
    if (!F.read("mode", U) || U > static_cast<uint64_t>(ExecMode::B))
      return false;
    R.Mode = static_cast<ExecMode>(U);
    return true;
  };

  bool OkAll = F.read("workload_seed", Run.WorkloadSeed) && readMode() &&
               F.read("seq_region_cycles", R.SeqRegionCycles) &&
               F.readD("program_speedup", R.ProgramSpeedup) &&
               F.readD("coverage_percent", R.CoveragePercent) &&
               F.readD("seq_region_speedup", R.SeqRegionSpeedup) &&
               readBool("faults_active", R.FaultsActive) &&
               F.read("fault_seed", R.FaultSeed) &&
               F.read("degraded_regions", R.DegradedRegions) &&
               readBool("completed", S.Completed) &&
               F.read("cycles", S.Cycles) &&
               F.read("slots_busy", S.Slots.Busy) &&
               F.read("slots_fail", S.Slots.Fail) &&
               F.read("slots_sync_scalar", S.Slots.SyncScalar) &&
               F.read("slots_sync_mem", S.Slots.SyncMem) &&
               F.read("slots_total", S.Slots.Total) &&
               F.read("epochs_committed", S.EpochsCommitted) &&
               F.read("violations", S.Violations) &&
               F.read("sab_violations", S.SabViolations) &&
               F.read("predict_restarts", S.PredictRestarts) &&
               F.read("viol_compiler_only", S.ViolCompilerOnly) &&
               F.read("viol_hw_only", S.ViolHwOnly) &&
               F.read("viol_both", S.ViolBoth) &&
               F.read("viol_neither", S.ViolNeither) &&
               F.read("sab_max_occupancy", S.SabMaxOccupancy) &&
               F.read("sab_overflows", S.SabOverflows) &&
               F.read("hw_table_resets", S.HwTableResets) &&
               F.read("predictor_correct", S.PredictorCorrect) &&
               F.read("predictor_wrong", S.PredictorWrong) &&
               F.read("filtered_waits", S.FilteredWaits) &&
               F.read("fault_signal_drops", S.Faults.SignalDrops) &&
               F.read("fault_signal_delays", S.Faults.SignalDelays) &&
               F.read("fault_corruptions", S.Faults.Corruptions) &&
               F.read("fault_mispredicts", S.Faults.Mispredicts) &&
               F.read("fault_spurious_violations",
                      S.Faults.SpuriousViolations) &&
               F.read("fault_hw_drops", S.Faults.HwDrops) &&
               F.read("watchdog_trips", S.WatchdogTrips) &&
               F.read("watchdog_wakes", S.WatchdogWakes) &&
               F.read("corruptions_detected", S.CorruptionsDetected) &&
               F.read("backoff_retries", S.BackoffRetries) &&
               F.read("livelock_breaks", S.LivelockBreaks) &&
               F.read("demoted_syncs", S.DemotedSyncs) &&
               F.read("demoted_waits", S.DemotedWaits) &&
               readBool("degraded_to_sequential", S.DegradedToSequential);
  if (!OkAll)
    return std::nullopt;
  if (!std::getline(IS, Line) || Line != "end")
    return std::nullopt;
  return Run;
}

ResultCache::ResultCache(std::string Dir) : Directory(std::move(Dir)) {
  if (Directory.empty())
    return;
#ifdef _WIN32
  Ok = false;
#else
  struct stat St;
  if (::stat(Directory.c_str(), &St) == 0)
    Ok = S_ISDIR(St.st_mode);
  else
    Ok = ::mkdir(Directory.c_str(), 0755) == 0;
#endif
  if (!Ok)
    std::fprintf(stderr,
                 "cache: cannot use directory %s; caching disabled\n",
                 Directory.c_str());
}

std::string ResultCache::entryPath(const std::string &KeyMaterial) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.srun",
                static_cast<unsigned long long>(fnv1a64(KeyMaterial)));
  return Directory + "/" + Name;
}

std::optional<CachedRun> ResultCache::lookup(const std::string &KeyMaterial) {
  if (!Ok)
    return std::nullopt;
  std::optional<CachedRun> Run;
  {
    std::ifstream IS(entryPath(KeyMaterial));
    if (IS) {
      std::ostringstream Buf;
      Buf << IS.rdbuf();
      Run = deserializeCachedRun(KeyMaterial, Buf.str());
    }
  }
  std::lock_guard<std::mutex> Lock(M);
  if (Run)
    ++Hits;
  else
    ++Misses;
  return Run;
}

void ResultCache::store(const std::string &KeyMaterial,
                        const CachedRun &Run) {
  if (!Ok)
    return;
  uint64_t Tmp;
  {
    std::lock_guard<std::mutex> Lock(M);
    Tmp = ++TmpCounter;
    ++Stores;
  }
  std::string Path = entryPath(KeyMaterial);
  // Unique tmp name per (process, store): concurrent writers of the same
  // key race benignly — both rename identical content into place.
  std::string TmpPath = Path + ".tmp." +
#ifndef _WIN32
                        std::to_string(::getpid()) + "." +
#endif
                        std::to_string(Tmp);
  {
    std::ofstream OS(TmpPath, std::ios::trunc);
    if (!OS)
      return;
    OS << serializeCachedRun(KeyMaterial, Run);
    if (!OS) {
      OS.close();
      std::remove(TmpPath.c_str());
      return;
    }
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0)
    std::remove(TmpPath.c_str());
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> Lock(M);
  return Hits;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> Lock(M);
  return Misses;
}

uint64_t ResultCache::stores() const {
  std::lock_guard<std::mutex> Lock(M);
  return Stores;
}
