//===- harness/Report.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"

#include "obs/Json.h"
#include "obs/StatRegistry.h"
#include "support/TextTable.h"

#include <cstdio>
#include <fstream>

using namespace specsync;

std::string specsync::renderModeBar(const std::string &Label,
                                    const ModeRunResult &R) {
  std::vector<BarSegment> Segs = {
      {'B', R.busyPct()},
      {'F', R.failPct()},
      {'S', R.syncPct()},
      {'O', R.otherPct()},
  };
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "  %-3s |", Label.c_str());
  return Buf + renderStackedBar(Segs, /*UnitsPerCell=*/4.0);
}

std::string specsync::barLegend() {
  return "  bars: B=busy F=failed-speculation S=sync-stall O=other, "
         "normalized to sequential = 100\n";
}

std::string specsync::renderBenchmarkBars(
    const std::string &Benchmark, const std::vector<ModeRunResult> &Results) {
  std::string Out = Benchmark + "\n";
  for (const ModeRunResult &R : Results)
    Out += renderModeBar(modeName(R.Mode), R) + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

void specsync::writeModeRunResultJson(obs::JsonWriter &W,
                                      const std::string &Label,
                                      const ModeRunResult &R) {
  W.beginObject();
  W.keyValue("label", Label);
  W.keyValue("mode", modeName(R.Mode));

  // Derived figures — exactly what the text bars/tables print.
  W.keyValue("normalized_region_time", R.normalizedRegionTime());
  W.keyValue("busy_pct", R.busyPct());
  W.keyValue("fail_pct", R.failPct());
  W.keyValue("sync_pct", R.syncPct());
  W.keyValue("other_pct", R.otherPct());
  W.keyValue("region_speedup", R.regionSpeedup());
  W.keyValue("program_speedup", R.ProgramSpeedup);
  W.keyValue("coverage_percent", R.CoveragePercent);
  W.keyValue("seq_region_speedup", R.SeqRegionSpeedup);
  W.keyValue("seq_region_cycles", R.SeqRegionCycles);

  const TLSSimResult &S = R.Sim;
  W.key("sim");
  W.beginObject();
  W.keyValue("completed", S.Completed);
  W.keyValue("cycles", S.Cycles);

  W.key("slots");
  W.beginObject();
  W.keyValue("busy", S.Slots.Busy);
  W.keyValue("fail", S.Slots.Fail);
  W.keyValue("sync_scalar", S.Slots.SyncScalar);
  W.keyValue("sync_mem", S.Slots.SyncMem);
  W.keyValue("sync", S.Slots.sync());
  W.keyValue("other", S.Slots.other());
  W.keyValue("total", S.Slots.Total);
  W.endObject();

  W.keyValue("epochs_committed", S.EpochsCommitted);
  W.keyValue("violations", S.Violations);
  W.keyValue("sab_violations", S.SabViolations);
  W.keyValue("predict_restarts", S.PredictRestarts);

  W.key("violation_attribution"); // Figure 11.
  W.beginObject();
  W.keyValue("compiler_only", S.ViolCompilerOnly);
  W.keyValue("hw_only", S.ViolHwOnly);
  W.keyValue("both", S.ViolBoth);
  W.keyValue("neither", S.ViolNeither);
  W.endObject();

  W.keyValue("sab_max_occupancy", S.SabMaxOccupancy);
  W.keyValue("sab_overflows", S.SabOverflows);
  W.keyValue("hw_table_resets", S.HwTableResets);
  W.keyValue("predictor_correct", S.PredictorCorrect);
  W.keyValue("predictor_wrong", S.PredictorWrong);
  W.keyValue("filtered_waits", S.FilteredWaits);
  W.endObject();

  W.endObject();
}

void specsync::writeJsonReport(std::ostream &OS, const std::string &Title,
                               const std::vector<BenchmarkModeResults> &All) {
  obs::JsonWriter W(OS);
  W.beginObject();
  W.keyValue("report", Title);
  W.keyValue("schema_version", 1);
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkModeResults &B : All) {
    W.beginObject();
    W.keyValue("name", B.Benchmark);
    W.key("modes");
    W.beginArray();
    for (const BenchmarkModeResults::Entry &E : B.Entries)
      writeModeRunResultJson(W, E.Label, E.Result);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  if (obs::statsEnabled()) {
    W.key("stats");
    obs::StatRegistry::global().writeJson(W);
  }
  W.endObject();
  OS << "\n";
}

bool specsync::writeJsonReportFile(
    const std::string &Path, const std::string &Title,
    const std::vector<BenchmarkModeResults> &All) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeJsonReport(OS, Title, All);
  return static_cast<bool>(OS);
}
