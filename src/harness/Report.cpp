//===- harness/Report.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace specsync;

std::string specsync::renderModeBar(const std::string &Label,
                                    const ModeRunResult &R) {
  std::vector<BarSegment> Segs = {
      {'B', R.busyPct()},
      {'F', R.failPct()},
      {'S', R.syncPct()},
      {'O', R.otherPct()},
  };
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "  %-3s |", Label.c_str());
  return Buf + renderStackedBar(Segs, /*UnitsPerCell=*/4.0);
}

std::string specsync::barLegend() {
  return "  bars: B=busy F=failed-speculation S=sync-stall O=other, "
         "normalized to sequential = 100\n";
}

std::string specsync::renderBenchmarkBars(
    const std::string &Benchmark, const std::vector<ModeRunResult> &Results) {
  std::string Out = Benchmark + "\n";
  for (const ModeRunResult &R : Results)
    Out += renderModeBar(modeName(R.Mode), R) + "\n";
  return Out;
}
