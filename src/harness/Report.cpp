//===- harness/Report.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Report.h"

#include "interp/Interpreter.h"

#include "obs/Json.h"
#include "obs/StatRegistry.h"
#include "support/TextTable.h"

#include <cstdio>
#include <fstream>

using namespace specsync;

std::string specsync::renderModeBar(const std::string &Label,
                                    const ModeRunResult &R) {
  std::vector<BarSegment> Segs = {
      {'B', R.busyPct()},
      {'F', R.failPct()},
      {'S', R.syncPct()},
      {'O', R.otherPct()},
  };
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "  %-3s |", Label.c_str());
  return Buf + renderStackedBar(Segs, /*UnitsPerCell=*/4.0);
}

std::string specsync::barLegend() {
  return "  bars: B=busy F=failed-speculation S=sync-stall O=other, "
         "normalized to sequential = 100\n";
}

std::string specsync::renderBenchmarkBars(
    const std::string &Benchmark, const std::vector<ModeRunResult> &Results) {
  std::string Out = Benchmark + "\n";
  for (const ModeRunResult &R : Results)
    Out += renderModeBar(modeName(R.Mode), R) + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

void specsync::writeModeRunResultJson(obs::JsonWriter &W,
                                      const std::string &Label,
                                      const ModeRunResult &R) {
  W.beginObject();
  W.keyValue("label", Label);
  W.keyValue("mode", modeName(R.Mode));

  // Derived figures — exactly what the text bars/tables print.
  W.keyValue("normalized_region_time", R.normalizedRegionTime());
  W.keyValue("busy_pct", R.busyPct());
  W.keyValue("fail_pct", R.failPct());
  W.keyValue("sync_pct", R.syncPct());
  W.keyValue("other_pct", R.otherPct());
  W.keyValue("region_speedup", R.regionSpeedup());
  W.keyValue("program_speedup", R.ProgramSpeedup);
  W.keyValue("coverage_percent", R.CoveragePercent);
  W.keyValue("seq_region_speedup", R.SeqRegionSpeedup);
  W.keyValue("seq_region_cycles", R.SeqRegionCycles);

  const TLSSimResult &S = R.Sim;
  W.key("sim");
  W.beginObject();
  W.keyValue("completed", S.Completed);
  W.keyValue("cycles", S.Cycles);

  W.key("slots");
  W.beginObject();
  W.keyValue("busy", S.Slots.Busy);
  W.keyValue("fail", S.Slots.Fail);
  W.keyValue("sync_scalar", S.Slots.SyncScalar);
  W.keyValue("sync_mem", S.Slots.SyncMem);
  W.keyValue("sync", S.Slots.sync());
  W.keyValue("other", S.Slots.other());
  W.keyValue("total", S.Slots.Total);
  W.endObject();

  W.keyValue("epochs_committed", S.EpochsCommitted);
  W.keyValue("violations", S.Violations);
  W.keyValue("sab_violations", S.SabViolations);
  W.keyValue("predict_restarts", S.PredictRestarts);

  W.key("violation_attribution"); // Figure 11.
  W.beginObject();
  W.keyValue("compiler_only", S.ViolCompilerOnly);
  W.keyValue("hw_only", S.ViolHwOnly);
  W.keyValue("both", S.ViolBoth);
  W.keyValue("neither", S.ViolNeither);
  W.endObject();

  W.keyValue("sab_max_occupancy", S.SabMaxOccupancy);
  W.keyValue("sab_overflows", S.SabOverflows);
  W.keyValue("hw_table_resets", S.HwTableResets);
  W.keyValue("predictor_correct", S.PredictorCorrect);
  W.keyValue("predictor_wrong", S.PredictorWrong);
  W.keyValue("filtered_waits", S.FilteredWaits);
  W.endObject();

  // Emitted only for robustness runs: with fault injection and the
  // watchdog off, the document stays byte-identical to earlier schemas.
  if (R.FaultsActive || R.DegradedRegions > 0 || S.WatchdogTrips > 0) {
    W.key("robustness");
    W.beginObject();
    W.keyValue("fault_seed", R.FaultSeed);
    W.key("injected");
    W.beginObject();
    W.keyValue("signal_drops", S.Faults.SignalDrops);
    W.keyValue("signal_delays", S.Faults.SignalDelays);
    W.keyValue("corruptions", S.Faults.Corruptions);
    W.keyValue("mispredicts", S.Faults.Mispredicts);
    W.keyValue("spurious_violations", S.Faults.SpuriousViolations);
    W.keyValue("hw_drops", S.Faults.HwDrops);
    W.keyValue("total", S.Faults.total());
    W.endObject();
    W.key("recovered");
    W.beginObject();
    W.keyValue("watchdog_trips", S.WatchdogTrips);
    W.keyValue("watchdog_wakes", S.WatchdogWakes);
    W.keyValue("corruptions_detected", S.CorruptionsDetected);
    W.keyValue("backoff_retries", S.BackoffRetries);
    W.keyValue("livelock_breaks", S.LivelockBreaks);
    W.endObject();
    W.key("degraded");
    W.beginObject();
    W.keyValue("demoted_syncs", S.DemotedSyncs);
    W.keyValue("demoted_waits", S.DemotedWaits);
    W.keyValue("regions_sequential", R.DegradedRegions);
    W.endObject();
    W.endObject();
  }

  // Event-ledger analyses; present only when the run recorded events
  // (--events-out), so default-off documents stay byte-identical.
  if (R.Forensics) {
    const ForensicsResult &F = *R.Forensics;
    const obs::SquashAttributionResult &A = F.Attribution;
    W.key("forensics");
    W.beginObject();
    W.keyValue("event_count", F.EventCount);
    W.keyValue("dropped_events", F.DroppedEvents);
    W.keyValue("reconciles", F.reconciles());

    W.key("squash_attribution");
    W.beginObject();
    W.keyValue("violations", A.Violations);
    W.keyValue("sab_violations", A.SabViolations);
    W.keyValue("predict_restarts", A.PredictRestarts);
    W.keyValue("corruptions_detected", A.CorruptionsDetected);
    W.keyValue("spurious_violations", A.SpuriousViolations);
    W.keyValue("epochs_committed", A.EpochsCommitted);
    W.keyValue("epochs_squashed", A.EpochsSquashed);
    W.keyValue("wasted_cycles", A.TotalWastedCycles);
    W.keyValue("fail_slots", A.FailSlots);
    W.keyValue("sync_scalar_slots", A.SyncScalarSlots);
    W.keyValue("sync_mem_slots", A.SyncMemSlots);
    W.key("top_pairs");
    W.beginArray();
    for (const auto &[Key, P] : A.topPairs(10)) {
      W.beginObject();
      W.keyValue("store_id", std::get<0>(Key));
      W.keyValue("store_ctx", std::get<1>(Key));
      W.keyValue("load_id", std::get<2>(Key));
      W.keyValue("load_ctx", std::get<3>(Key));
      W.keyValue("violations", P->Violations);
      W.keyValue("epochs_squashed", P->EpochsSquashed);
      W.keyValue("wasted_cycles", P->WastedCycles);
      W.keyValue("distinct_addrs", static_cast<uint64_t>(P->AddrHeat.size()));
      W.endObject();
    }
    W.endArray();
    W.endObject();

    const obs::CriticalPathResult &C = F.CriticalPath;
    W.key("critical_path");
    W.beginObject();
    W.keyValue("regions", static_cast<uint64_t>(C.Regions.size()));
    W.keyValue("sync_bound", C.SyncBound);
    W.keyValue("squash_bound", C.SquashBound);
    W.keyValue("commit_bound", C.CommitBound);
    W.keyValue("busy", C.Busy);
    W.keyValue("max_chain_len", C.MaxChainLen);
    W.keyValue("max_chain_cycles", C.MaxChainCycles);
    W.keyValue("max_chain_region", C.MaxChainRegion);
    W.endObject();

    W.endObject();
  }

  W.endObject();
}

/// Serializes one real-threads run (the `real_threads` block entries):
/// geometry, the three cross-validation verdicts, live and replay protocol
/// counts, recovery/fault tallies, and wall-clock times.
static void writeRealThreadsJson(obs::JsonWriter &W, const std::string &Label,
                                 const rt::RtRunResult &R) {
  auto counts = [&W](const char *Key, const rt::ProtocolCounts &C) {
    W.key(Key);
    W.beginObject();
    W.keyValue("regions", C.Regions);
    W.keyValue("epochs_committed", C.EpochsCommitted);
    W.keyValue("epochs_squashed", C.EpochsSquashed);
    W.keyValue("violations", C.Violations);
    W.keyValue("sab_violations", C.SabViolations);
    W.keyValue("sync_stalls_scalar", C.SyncStallsScalar);
    W.keyValue("sync_stalls_mem", C.SyncStallsMem);
    W.endObject();
  };

  W.beginObject();
  W.keyValue("label", Label);
  W.keyValue("completed", R.Completed);
  W.keyValue("threads", static_cast<uint64_t>(R.Threads));
  W.keyValue("window", static_cast<uint64_t>(R.Window));

  // Cross-validation verdicts.
  W.keyValue("checksum_match", R.ChecksumMatch);
  W.keyValue("counts_match", R.CountsMatch);
  W.keyValue("rt_checksum", R.RtChecksum);
  W.keyValue("seq_checksum", R.SeqChecksum);

  counts("counts", R.Counts);
  counts("replay", R.Replay);

  W.keyValue("wasted_steps", R.WastedSteps);
  W.keyValue("regions_parallel", R.RegionsParallel);
  W.keyValue("regions_sequential", R.RegionsSequential);
  W.keyValue("regions_demoted", R.RegionsDemoted);
  W.keyValue("watchdog_trips", R.WatchdogTrips);
  W.keyValue("backoff_retries", R.BackoffRetries);

  W.key("faults_fired");
  W.beginObject();
  W.keyValue("spurious_aborts", R.SpuriousAborts);
  W.keyValue("delayed_commits", R.DelayedCommits);
  W.keyValue("worker_stalls", R.WorkerStalls);
  W.endObject();

  W.keyValue("seq_wall_ms", R.SeqWallMs);
  W.keyValue("rt_wall_ms", R.RtWallMs);
  W.keyValue("wall_speedup", R.RtWallMs > 0 ? R.SeqWallMs / R.RtWallMs : 0.0);

  if (R.Forensics) {
    W.key("forensics");
    W.beginObject();
    W.keyValue("event_count", R.Forensics->EventCount);
    W.keyValue("dropped_events", R.Forensics->DroppedEvents);
    W.keyValue("reconciles", R.Forensics->reconciles());
    W.endObject();
  }
  W.endObject();
}

void specsync::writeJsonReport(std::ostream &OS, const std::string &Title,
                               const std::vector<BenchmarkModeResults> &All,
                               const RobustnessOptions *Robust) {
  bool Robustness = Robust != nullptr;
  obs::JsonWriter W(OS);
  W.beginObject();
  W.keyValue("report", Title);
  W.keyValue("schema_version", 1);
  // Execution-tier provenance: which engine produced these numbers. The
  // tiers are differentially verified bit-identical, so results never
  // depend on it — wall-clock-derived fields do.
  W.keyValue("engine", interpEngineName(defaultInterpEngine()));
  if (Robustness) {
    // Replay handle: the exact plan and watchdog settings of this run.
    W.key("fault_plan");
    W.beginObject();
    W.keyValue("seed", Robust->Plan.Seed);
    W.keyValue("signal_drop_pct", Robust->Plan.SignalDropPct);
    W.keyValue("signal_delay_pct", Robust->Plan.SignalDelayPct);
    W.keyValue("signal_delay_cycles", Robust->Plan.SignalDelayCycles);
    W.keyValue("signal_corrupt_pct", Robust->Plan.SignalCorruptPct);
    W.keyValue("mispredict_pct", Robust->Plan.MispredictPct);
    W.keyValue("spurious_violation_pct", Robust->Plan.SpuriousViolationPct);
    W.keyValue("hw_update_drop_pct", Robust->Plan.HwUpdateDropPct);
    W.endObject();
    W.key("watchdog");
    W.beginObject();
    W.keyValue("budget", Robust->WatchdogBudget);
    W.keyValue("backoff_base", Robust->WatchdogBackoffBase);
    W.keyValue("retry_limit", Robust->EpochRetryLimit);
    W.keyValue("demote_threshold", Robust->GroupDemoteThreshold);
    W.keyValue("degrade_squash_rate", Robust->DegradeSquashRate);
    W.endObject();
  }
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkModeResults &B : All) {
    W.beginObject();
    W.keyValue("name", B.Benchmark);
    if (Robustness)
      W.keyValue("workload_seed", B.WorkloadSeed);
    W.key("modes");
    W.beginArray();
    for (const BenchmarkModeResults::Entry &E : B.Entries)
      writeModeRunResultJson(W, E.Label, E.Result);
    W.endArray();
    // Present only when the static engine ran for this benchmark; absent,
    // the document stays byte-identical to pre-analysis schemas.
    if (B.OracleRef || B.OracleTrain || B.AnalysisDiags) {
      W.key("static_analysis");
      W.beginObject();
      if (B.OracleRef) {
        W.key("ref");
        B.OracleRef->writeJson(W);
      }
      if (B.OracleTrain) {
        W.key("train");
        B.OracleTrain->writeJson(W);
      }
      if (B.AnalysisDiags) {
        W.key("diagnostics");
        B.AnalysisDiags->writeJson(W);
      }
      W.endObject();
    }
    // Present only when the dependence profiles were sampled; absent,
    // the document stays byte-identical to exact-profiling schemas.
    if (B.Sampling) {
      W.key("profile_sampling");
      W.beginObject();
      W.keyValue("sample_every", B.Sampling->SampleEvery);
      W.keyValue("sample_seed", B.Sampling->SampleSeed);
      W.keyValue("min_observe_epochs", B.Sampling->MinObserveEpochs);
      W.key("ref");
      W.beginObject();
      W.keyValue("sampled_epochs", B.Sampling->RefSampledEpochs);
      W.keyValue("total_epochs", B.Sampling->RefTotalEpochs);
      W.endObject();
      W.key("train");
      W.beginObject();
      W.keyValue("sampled_epochs", B.Sampling->TrainSampledEpochs);
      W.keyValue("total_epochs", B.Sampling->TrainTotalEpochs);
      W.endObject();
      W.endObject();
    }
    // Present only when the remediator chain ran for this benchmark;
    // absent, the document stays byte-identical to pre-remediator schemas.
    if (B.Remedies) {
      W.key("remedies");
      B.Remedies->writeJson(W);
    }
    // Present only when a real-threads sweep ran for this benchmark;
    // absent, the document stays byte-identical to pre-backend schemas.
    if (!B.RealThreads.empty()) {
      W.key("real_threads");
      W.beginArray();
      for (const BenchmarkModeResults::RtEntry &E : B.RealThreads)
        if (E.Result)
          writeRealThreadsJson(W, E.Label, *E.Result);
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();
  if (obs::statsEnabled()) {
    W.key("stats");
    obs::StatRegistry::global().writeJson(W);
  }
  W.endObject();
  OS << "\n";
}

bool specsync::writeJsonReportFile(
    const std::string &Path, const std::string &Title,
    const std::vector<BenchmarkModeResults> &All,
    const RobustnessOptions *Robust) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeJsonReport(OS, Title, All, Robust);
  return static_cast<bool>(OS);
}
