//===- harness/ExperimentRunner.h - Parallel experiment runner -*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shards an experiment grid — (benchmark, mode, config, seed) cells —
/// across a work-stealing thread pool while keeping the output of every
/// bench binary byte-identical to a serial run:
///
///  - every cell runs with its own StatRegistry and TraceLog (installed
///    as the worker thread's current sinks), merged into the process
///    sinks in canonical grid order;
///  - all user-visible side effects (stdout tables, report recording)
///    happen on the calling thread, in canonical order, via
///    capture/replay: cell 0 of a grid records the body's run() calls as
///    a plan, workers execute the plan for the remaining cells, and the
///    body is replayed against worker-prepared pipelines whose run()
///    calls return the precomputed results;
///  - with a --cache-dir, each run step is first looked up in the
///    content-addressed ResultCache, skipping prepare+simulate entirely
///    for fully cached cells.
///
/// Flags (parsed by BenchSession for every bench binary):
///   --jobs=N                  concurrent cells (default 1; 0 = all cores)
///   --cache-dir=DIR           reuse simulated results across invocations
///   --workloads=A,B           restrict grids to a comma-separated subset
///   --profile-sample=N        sample 1-in-N epochs when dep profiling
///                             (default 1 = exact)
///   --profile-sample-seed=S   epoch-selection seed (default 0)
/// Environment fallbacks: SPECSYNC_JOBS, SPECSYNC_CACHE_DIR,
/// SPECSYNC_WORKLOADS, SPECSYNC_PROFILE_SAMPLE,
/// SPECSYNC_PROFILE_SAMPLE_SEED.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_HARNESS_EXPERIMENTRUNNER_H
#define SPECSYNC_HARNESS_EXPERIMENTRUNNER_H

#include "analysis/StaticAnalysis.h"
#include "harness/Pipeline.h"
#include "obs/EventLog.h"
#include "obs/StatRegistry.h"
#include "obs/TraceLog.h"
#include "sim/FaultInjector.h"
#include "workloads/Workload.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace specsync {

struct ExperimentOptions {
  unsigned Jobs = 1;          ///< Concurrent cells; 0 = ThreadPool default.
  std::string CacheDir;       ///< Empty = result caching off.
  std::string WorkloadFilter; ///< Comma-separated names; empty = all.

  /// Dependence-profiler epoch sampling: observe the load side of one
  /// epoch in N (1 = exact, the default). Applied to every pipeline the
  /// grid helpers construct.
  uint64_t ProfileSampleEvery = 1;
  uint64_t ProfileSampleSeed = 0; ///< Stream seed for epoch selection.

  /// Jobs with the 0-means-default rule applied.
  unsigned effectiveJobs() const;

  /// The profiler configuration these options imply. Sharding follows
  /// the job count only when sampling is on — the exact profiler keeps
  /// its single-shard direct path (and its byte-identical output).
  ProfileSamplingOptions profileSampling() const;
};

/// Reads the environment, then overrides from argv. Does not mutate argv.
ExperimentOptions parseExperimentArgs(int argc, char **argv);

/// Removes the experiment flags from argv (compacting in place) and
/// returns the new argc — companion to obs::stripObsArgs for binaries
/// whose own flag parser rejects unknown arguments.
int stripExperimentArgs(int argc, char **argv);

/// Session-wide options, installed by BenchSession so the free-function
/// grid helpers (forEachBenchmark) pick them up with zero per-binary
/// wiring. Defaults to a serial, uncached run when never set.
void setSessionExperimentOptions(const ExperimentOptions &Opts);
const ExperimentOptions &sessionExperimentOptions();

/// Applies \p Filter (comma-separated names, empty = all) to \p All,
/// preserving canonical order. Unknown names warn on stderr once.
std::vector<const Workload *>
filterWorkloads(const std::vector<Workload> &All, const std::string &Filter);
std::vector<const Workload *>
filterWorkloads(std::vector<const Workload *> All, const std::string &Filter);

class ResultCache;

/// Builds the session's ResultCache from --cache-dir, or null when
/// caching is off — also null (with a warning) while an observability
/// sink is active, since cached runs record no stats or trace events.
std::unique_ptr<ResultCache> makeSessionResultCache();

/// Prints the cache's hit/miss/store tallies to stderr (no-op on null).
void reportCacheStats(const ResultCache *Cache);

/// One cell's private observability sinks plus their canonical-order
/// merge into the process sinks.
class CellObs {
public:
  CellObs();

  obs::StatRegistry &stats() { return Stats; }
  obs::TraceLog &trace() { return Trace; }
  obs::EventLog &events() { return Events; }

  /// Folds this cell's stats, trace, and event ledger into the process
  /// sinks. Call in canonical grid order, after synchronizing with the
  /// cell's worker.
  void mergeIntoProcess();

private:
  obs::StatRegistry Stats;
  obs::TraceLog Trace;
  obs::EventLog Events;
};

/// RAII: while alive, the calling thread's obs sinks resolve to \p O.
class CellObsScope {
public:
  explicit CellObsScope(CellObs &O)
      : S(&O.stats()), T(&O.trace()), E(&O.events()) {}

private:
  obs::ScopedStatRegistry S;
  obs::ScopedTraceLog T;
  obs::ScopedEventLog E;
};

/// The deterministic-sharding scaffold: \p Prepare(i) runs on pool
/// workers in any order; \p Consume(i) runs on the calling thread in
/// index order. Each cell's Prepare and Consume run under that cell's
/// own obs scope, which is merged into the process sinks right after
/// Consume(i) — so stats, traces, and every Consume side effect land in
/// canonical order regardless of \p Jobs. Exceptions from Prepare(i) are
/// rethrown on the calling thread at cell i's consume point.
void runCellsOrdered(size_t NumCells, unsigned Jobs,
                     const std::function<void(size_t)> &Prepare,
                     const std::function<void(size_t)> &Consume);

/// The forEachBenchmark engine: runs \p Body once per (filtered) Table 2
/// workload with a prepared pipeline, sharded per the session options.
void runBenchmarkGrid(const MachineConfig &Config,
                      const RobustnessOptions &Robust,
                      const analysis::StaticAnalysisOptions &Static,
                      const std::function<void(BenchmarkPipeline &)> &Body);

} // namespace specsync

#endif // SPECSYNC_HARNESS_EXPERIMENTRUNNER_H
