//===- workloads/KernelCommon.cpp -------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"

using namespace specsync;

LoopBlocks specsync::makeCountedLoop(IRBuilder &B, IRBuilder::V TripCount,
                                     const std::string &Prefix) {
  Function *F = B.getFunction();
  assert(F && "builder has no insertion point");

  LoopBlocks L;
  L.Preheader = B.getBlock();
  L.IndVar = B.emitConst(0);
  Reg Bound = B.emitMove(TripCount);

  L.Header = &F->addBlock(Prefix + ".header");
  L.Body = &F->addBlock(Prefix + ".body");
  L.Latch = &F->addBlock(Prefix + ".latch");
  L.Exit = &F->addBlock(Prefix + ".exit");

  B.emitBr(*L.Header);

  B.setInsertPoint(F, L.Header);
  Reg Cond = B.emitCmp(Opcode::CmpLT, L.IndVar, Bound);
  B.emitCondBr(Cond, *L.Body, *L.Exit);

  B.setInsertPoint(F, L.Latch);
  B.emitBinaryInto(L.IndVar, Opcode::Add, L.IndVar, 1);
  B.emitBr(*L.Header);

  B.setInsertPoint(F, L.Body);
  return L;
}

void specsync::closeLoop(IRBuilder &B, const LoopBlocks &L) {
  B.emitBr(*L.Latch);
  B.setInsertPoint(B.getFunction(), L.Exit);
}

Reg specsync::emitPercentFlag(IRBuilder &B, Reg R, unsigned Shift,
                              unsigned Percent) {
  assert(Percent <= 100 && "percent out of range");
  Reg Bits = B.emitAnd(B.emitShr(R, static_cast<int64_t>(Shift)), 1023);
  return B.emitCmp(Opcode::CmpLT, Bits,
                   static_cast<int64_t>(Percent * 1024 / 100));
}

Reg specsync::emitAluWork(IRBuilder &B, unsigned Ops, Reg Seed) {
  Reg X = Seed;
  for (unsigned I = 0; I < Ops; ++I) {
    switch (I % 4) {
    case 0: X = B.emitMul(X, 0x9e37); break;
    case 1: X = B.emitXor(X, B.emitShr(X, 7)); break; // Two instructions.
    case 2: X = B.emitAdd(X, 0x7f4a7c15); break;
    default: X = B.emitAnd(X, 0x7fffffff); break;
    }
  }
  return X;
}

void specsync::emitSeqFiller(IRBuilder &B, int64_t Iters, unsigned OpsPerIter,
                             uint64_t ScratchAddr, const std::string &Prefix) {
  LoopBlocks L = makeCountedLoop(B, Iters, Prefix);
  Reg Slot = B.emitAnd(L.IndVar, 63);
  Reg Addr = B.emitAdd(B.emitShl(Slot, 3), ScratchAddr);
  Reg V = B.emitLoad(Addr);
  Reg W = emitAluWork(B, OpsPerIter, V);
  B.emitStore(Addr, W);
  closeLoop(B, L);
}

void specsync::emitCoverageFiller(IRBuilder &B, uint64_t RegionInstsEstimate,
                                  unsigned CoveragePercent,
                                  uint64_t ScratchAddr,
                                  const std::string &Prefix) {
  assert(CoveragePercent > 0 && CoveragePercent <= 100 &&
         "coverage must be a percentage");
  // ~22 ALU ops per iteration plus loop/memory overhead of ~11.
  constexpr unsigned OpsPerIter = 22;
  constexpr unsigned InstsPerIter = OpsPerIter + 11;
  uint64_t SeqInsts =
      RegionInstsEstimate * (100 - CoveragePercent) / CoveragePercent;
  int64_t Iters = static_cast<int64_t>(SeqInsts / InstsPerIter);
  if (Iters <= 0)
    return;
  emitSeqFiller(B, Iters, OpsPerIter, ScratchAddr, Prefix);
}
