//===- workloads/Perlbmk.cpp - 253.perlbmk analog ----------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter-style loop adjusting reference counts of a small set of
/// shared objects: every epoch loads one of eight counters early and
/// stores the adjusted value late, so any two nearby epochs touching the
/// same object race. ~30% of epochs hit a recently-touched object, making
/// failed speculation common; compiler sync converts it into a moderate
/// forwarding chain (paper: modest C win, region speedup ~1.2).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildPerlbmk(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x253253 : 0x253042);

  uint64_t RefCnt = P->addGlobal("refcnt", 8 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, 8, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), RefCnt);
    B.emitStore(A, 1);
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 850 : 340;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 210;
  emitCoverageFiller(B, RegionEstimate / 2, 29, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();

    // Select the object: a skewed distribution keeps one counter hot.
    Reg Raw = B.emitAnd(B.emitShr(R, 5), 15);
    Reg IsHot = B.emitCmp(Opcode::CmpGE, Raw, 8);
    Reg Obj = B.emitSelect(IsHot, 0, B.emitAnd(Raw, 7));
    Reg Addr = B.emitAdd(B.emitShl(Obj, 3), RefCnt);

    // Early load of the refcount (the synchronized load).
    Reg C = B.emitLoad(Addr);

    // Interpret an opcode body before the count can be written back.
    Reg W = emitAluWork(B, 120, B.emitXor(C, R));

    // Late store of the adjusted count (every epoch).
    B.emitStore(Addr, B.emitAdd(C, 1));

    Reg T = emitAluWork(B, 40, W);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 29, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
