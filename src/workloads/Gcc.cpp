//===- workloads/Gcc.cpp - 176.gcc analog ------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbol-table loop: each epoch looks a symbol up early (through a call
/// chain: process_decl -> symtab_lookup) and on ~55% of epochs inserts a
/// new binding late (process_decl -> symtab_insert). Only eight hot slots,
/// so the lookup's dependence on earlier inserts is frequent and often
/// close (distance 1-2) while the insert's store lands deep in the epoch:
/// plain TLS violates constantly, compiler sync fixes it — and, because
/// both references live two calls below the parallelized loop, this
/// benchmark exercises call-path procedure cloning at depth 2.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildGcc(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x176176 : 0x176042);

  uint64_t Symtab = P->addGlobal("symtab", 8 * 8); // Eight hot slots.
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);

  // sym symtab_lookup(key): return symtab[key & 7];
  Function &Lookup = P->addFunction("symtab_lookup", 1);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = Lookup.addBlock("entry");
    B.setInsertPoint(&Lookup, &Entry);
    Reg Slot = B.emitAnd(B.param(0), 7);
    Reg V = B.emitLoad(B.emitAdd(B.emitShl(Slot, 3), Symtab));
    B.emitRet(V);
  }

  // void symtab_insert(key, val): hash work; symtab[key & 7] = val;
  Function &Insert = P->addFunction("symtab_insert", 2);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = Insert.addBlock("entry");
    B.setInsertPoint(&Insert, &Entry);
    Reg W = emitAluWork(B, 24, B.param(1)); // Rehash before the store.
    Reg Slot = B.emitAnd(B.param(0), 7);
    B.emitStore(B.emitAdd(B.emitShl(Slot, 3), Symtab), B.emitOr(W, 1));
    B.emitRet(0);
  }

  // val process_decl(key, doinsert): the declaration kind (insert or not)
  // is known on entry, so the no-insert path is store-free from its first
  // instruction — the compiler's NULL signal fires immediately there. On
  // the insert path the binding is only ready after the long analysis.
  Function &Process = P->addFunction("process_decl", 2);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = Process.addBlock("entry");
    BasicBlock &Ins = Process.addBlock("insert");
    BasicBlock &Done = Process.addBlock("done");
    B.setInsertPoint(&Process, &Entry);
    B.emitCondBr(B.param(1), Ins, Done);
    B.setInsertPoint(&Process, &Ins);
    {
      Reg V = B.emitCall(Lookup, {B.param(0)});
      Reg W = emitAluWork(B, 100, B.emitXor(V, B.param(0)));
      B.emitCall(Insert, {B.param(0), W});
      B.emitRet(W);
    }
    B.setInsertPoint(&Process, &Done);
    {
      Reg V = B.emitCall(Lookup, {B.param(0)});
      Reg W = emitAluWork(B, 110, B.emitAdd(V, B.param(0)));
      B.emitRet(W);
    }
  }

  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, 8, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Symtab);
    B.emitStore(A, B.emitAdd(Init.IndVar, 3));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 230;
  emitCoverageFiller(B, RegionEstimate / 2, 18, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();
    Reg Key = B.emitAnd(R, 7);
    Reg DoIns = emitPercentFlag(B, R, 0, 55);
    Reg V = B.emitCall(Process, {Key, DoIns});
    Reg T = emitAluWork(B, 40, V);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 18, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
