//===- workloads/Bzip2Comp.cpp - 256.bzip2 compression analog ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sorting/compression loop with layered shared counters: the main bucket
/// counter is touched by ~30% of epochs, while two secondary counters live
/// on rare paths (~8% and ~12% of epochs) — their loads sit exactly in the
/// 5-15% dependence-frequency band of Figure 6, which is why BZIP2_COMP
/// (like GZIP_COMP) only profits once the synchronization threshold drops
/// to 5%. All stores land late, so un-synchronized runs violate heavily
/// and the region stays around break-even even when synchronized (paper:
/// region speedup ~0.94).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildBzip2Comp(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x256c01 : 0x256042);

  uint64_t CntA = P->addGlobal("cnt_main", 8);
  uint64_t CntB = P->addGlobal("cnt_runs", 8);
  uint64_t CntC = P->addGlobal("cnt_mtf", 8);
  uint64_t Buf = P->addGlobal("buf", 256 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(CntA, 1);
  B.emitStore(CntB, 1);
  B.emitStore(CntC, 1);
  {
    LoopBlocks Init = makeCountedLoop(B, 256, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Buf);
    B.emitStore(A, B.emitMul(Init.IndVar, 69069));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 850 : 340;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 220;
  emitCoverageFiller(B, RegionEstimate / 2, 63, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *PathA = &Main.addBlock("main_cnt");
  BasicBlock *SkipA = &Main.addBlock("skip_main");
  BasicBlock *PathB = &Main.addBlock("runs_cnt");
  BasicBlock *SkipB = &Main.addBlock("skip_runs");
  BasicBlock *PathC = &Main.addBlock("mtf_cnt");
  BasicBlock *JoinC = &Main.addBlock("join_mtf");
  {
    Reg R = B.emitRand();
    Reg V = B.emitLoad(B.emitAdd(B.emitShl(B.emitAnd(R, 255), 3), Buf));

    // Main counter: ~35% of epochs load it right away and store it back
    // mid-epoch; its load is in the >25% frequency band.
    Reg DoA = emitPercentFlag(B, R, 0, 35);
    B.emitCondBr(DoA, *PathA, *SkipA);
    B.setInsertPoint(&Main, PathA);
    {
      Reg A = B.emitLoad(CntA);
      Reg W = emitAluWork(B, 30, B.emitAdd(A, V));
      B.emitStore(CntA, B.emitOr(W, 1));
      Reg W2 = emitAluWork(B, 40, W);
      B.emitStore(Out + 48, W2);
      B.emitBr(*SkipA);
    }
    B.setInsertPoint(&Main, SkipA);

    // Run-length counter: *bursty* — active in 16-epoch runs covering
    // ~12.5% of all epochs (the 5-15% band of Figure 6). Within a burst
    // the dependence is distance 1 and the store is very late, so these
    // epochs violate heavily; only the 5% threshold covers them.
    Reg Phase = B.emitAnd(B.emitShr(L.IndVar, 4), 7);
    Reg DoB = B.emitCmp(Opcode::CmpEQ, Phase, 0);
    B.emitCondBr(DoB, *PathB, *SkipB);
    B.setInsertPoint(&Main, PathB);
    {
      Reg C = B.emitLoad(CntB);
      Reg W = emitAluWork(B, 90, B.emitXor(C, V));
      B.emitStore(CntB, B.emitOr(W, 1));
      B.emitBr(*SkipB);
    }
    B.setInsertPoint(&Main, SkipB);

    // Move-to-front counter: a second 12.5% burst window (5-15% band).
    Reg DoC = B.emitCmp(Opcode::CmpEQ, Phase, 4);
    B.emitCondBr(DoC, *PathC, *JoinC);
    B.setInsertPoint(&Main, PathC);
    {
      Reg C = B.emitLoad(CntC);
      Reg W = emitAluWork(B, 90, B.emitAdd(C, V));
      B.emitStore(CntC, B.emitOr(W, 1));
      B.emitBr(*JoinC);
    }
    B.setInsertPoint(&Main, JoinC);

    Reg T = emitAluWork(B, 30, V);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 63, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
