//===- workloads/Gap.cpp - 254.gap analog ------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workspace bump allocator: every epoch computes a request size (variable
/// work), reads the memory-resident `free_ptr`, advances it, and fills the
/// allocated words. Epochs are short, so TLS overheads and the deep
/// allocation point dominate: the baseline collapses under constant
/// violations and even compiler sync only brings the region back to just
/// under break-even (paper: coverage 57%, region speedup ~0.92, best with
/// compiler sync).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildGap(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x254254 : 0x254042);

  uint64_t FreePtr = P->addGlobal("free_ptr", 8);
  uint64_t Heap = P->addGlobal("heap", 65536 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(FreePtr, Heap);

  int64_t Epochs = Ref ? 1100 : 420;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 110;
  emitCoverageFiller(B, RegionEstimate / 2, 57, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();

    // Variable-length sizing work (1..12 rounds of a tight loop): epochs
    // are short and the allocation point jitters widely, so the previous
    // epoch's bump frequently lands after this epoch reads the pointer.
    Reg Trip = B.emitAdd(B.emitAnd(R, 11), 1);
    LoopBlocks Size = makeCountedLoop(B, Trip, "size");
    Reg T = emitAluWork(B, 4, B.emitAdd(Size.IndVar, R));
    B.emitStore(Scratch + 16, T);
    closeLoop(B, Size);

    Reg Words = B.emitAdd(B.emitAnd(R, 3), 1);

    // The allocation: load free_ptr, bump, store (deep in the epoch).
    Reg Ptr = B.emitLoad(FreePtr);
    Reg NewPtr = B.emitAdd(Ptr, B.emitShl(Words, 3));
    // Wrap within the heap so long runs stay in bounds.
    Reg Off = B.emitAnd(B.emitSub(NewPtr, Heap), 65535 * 8);
    B.emitStore(FreePtr, B.emitAdd(Off, Heap));

    // Fill the allocated object (word-disjoint across epochs).
    B.emitStore(Ptr, R);
    B.emitStore(B.emitAdd(Ptr, 8), B.emitAdd(R, 1));
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 57, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
