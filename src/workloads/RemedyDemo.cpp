//===- workloads/RemedyDemo.cpp - Remediator ensemble demo ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstration kernel for the remediator ensemble: one workload whose
/// speculation problems are cured by *transforming* remedies rather than
/// synchronization.
///
///  - Reduction: every epoch appends a contribution to a shared `total`
///    word through a textbook `x = x + e` load-add-store triple. The
///    word-exact profile sees a 100%-frequent distance-1 dependence, so
///    without remedies the compiler serializes the region on it; the
///    reduction module instead rewrites the triple into a commit-time
///    folded Reduce, dissolving the dependence entirely.
///
///  - Privatization: a scratch word is rewritten at the top of every
///    epoch (plus a ~25% conditional second store) and re-read later in
///    the same epoch — provably epoch-local, yet it shares a 32-byte
///    cache line with a hot read-only word every epoch loads up front.
///    The line-granularity conflict tracker squashes on that false
///    sharing until the shortlived module privatizes the scratch stores,
///    exempting them from write tracking.
///
/// Not part of the paper's Table 2 set — registered via extraWorkloads()
/// so figure/table binaries are unaffected.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildRemedyDemo(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x4ED0DE00 : 0x4ED0DE42);

  // Globals are 64-byte aligned, so this 32-byte global is exactly one
  // cache line: `hot` (word 0, read-only in the region) false-shares it
  // with `scratch` (word 2, stored every epoch).
  uint64_t HotLine = P->addGlobal("hot_line", 32);
  uint64_t Hot = HotLine;
  uint64_t Scratch = HotLine + 16;
  uint64_t Total = P->addGlobal("total", 8);
  uint64_t Table = P->addGlobal("table", 64 * 8);
  uint64_t Seq = P->addGlobal("seq_scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(Hot, 0x1234);
  B.emitStore(Scratch, 0);
  B.emitStore(Total, 0);
  {
    LoopBlocks Init = makeCountedLoop(B, 64, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Table);
    B.emitStore(A, B.emitMul(Init.IndVar, 29));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 110;
  emitCoverageFiller(B, RegionEstimate / 2, 25, Seq, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Retune = &Main.addBlock("retune");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();

    // Early: read the hot word — the load whose line the scratch stores
    // keep dirtying.
    Reg H = B.emitLoad(Hot);

    // The scratch word's unconditional kill: every epoch overwrites it
    // before any read, making the location epoch-local.
    B.emitStore(Scratch, B.emitXor(H, R));

    Reg W = emitAluWork(B, 50, B.emitXor(H, R));
    Reg TV = B.emitLoad(B.emitAdd(B.emitShl(B.emitAnd(R, 63), 3), Table));

    // ~25% of epochs retune the scratch value; privatization must cover
    // this conditional store too (the kill above keeps it epoch-local).
    Reg Tune = emitPercentFlag(B, R, 4, 25);
    B.emitCondBr(Tune, *Retune, *Join);
    B.setInsertPoint(&Main, Retune);
    {
      B.emitStore(Scratch, B.emitAdd(TV, 5));
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Join);

    Reg SV = B.emitLoad(Scratch);
    Reg W2 = emitAluWork(B, 30, B.emitAdd(W, SV));
    Reg E = B.emitAnd(W2, 0xffff);

    // Late: the reduction triple. Kept contiguous so the matcher's
    // clean-window requirement holds; the rewrite turns it into a single
    // Reduce folded at commit.
    Reg TotV = B.emitLoad(Total);
    Reg TotN = B.emitAdd(TotV, E);
    B.emitStore(Total, TotN);

    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W2, 63), 3), Out), W2);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 25, Seq, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
