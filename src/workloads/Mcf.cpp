//===- workloads/Mcf.cpp - 181.mcf analog ------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arc-relaxation loop over a network-simplex-style potential array: most
/// epochs only read potentials; ~20% update one random entry mid-epoch.
/// Collisions between the updated and consulted entries are spread over 64
/// slots, so violations are present but mild; TLS already profits and
/// compiler sync adds a small improvement (paper: region speedup ~1.25,
/// C ~= U).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildMcf(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x181181 : 0x181042);

  uint64_t Pot = P->addGlobal("potential", 64 * 8);
  uint64_t Arcs = P->addGlobal("arcs", 256 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, 64, "initp");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Pot);
    B.emitStore(A, B.emitMul(Init.IndVar, 17));
    closeLoop(B, Init);
  }
  {
    LoopBlocks Init = makeCountedLoop(B, 256, "inita");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Arcs);
    B.emitStore(A, B.emitMul(Init.IndVar, 1103515245));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 240;
  emitCoverageFiller(B, RegionEstimate / 2, 89, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Upd = &Main.addBlock("update");
  BasicBlock *Skip = &Main.addBlock("skip");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();

    // Arc inspection first: by the time the potential is consulted there
    // is slack between this epoch and its producer, so the forwarding
    // chain absorbs cache-miss jitter instead of amplifying it.
    Reg ArcV = B.emitLoad(
        B.emitAdd(B.emitShl(B.emitAnd(R, 255), 3), Arcs));
    Reg W0 = emitAluWork(B, 36, B.emitXor(ArcV, R));
    B.emitStore(Out + 32, W0);

    // Consult the potential of this arc's tail node.
    Reg Tail = B.emitAnd(B.emitShr(R, 4), 63);
    Reg PV = B.emitLoad(B.emitAdd(B.emitShl(Tail, 3), Pot));

    // ~20% of epochs relax a node potential; the decision is known as soon
    // as the arc is inspected, so non-relaxing epochs signal NULL almost
    // immediately.
    Reg DoUpd = emitPercentFlag(B, R, 0, 20);
    B.emitCondBr(DoUpd, *Upd, *Skip);

    B.setInsertPoint(&Main, Upd);
    {
      // The relaxed potential is a short computation on the arc data; the
      // long part of the epoch follows the update.
      Reg Node = B.emitAnd(B.emitShr(R, 10), 63);
      Reg W = emitAluWork(B, 16, B.emitXor(PV, ArcV));
      B.emitStore(B.emitAdd(B.emitShl(Node, 3), Pot), B.emitOr(W, 1));
      Reg W2 = emitAluWork(B, 134, W);
      B.emitStore(Out + 24, W2);
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Skip);
    {
      Reg W = emitAluWork(B, 150, B.emitAdd(B.emitXor(PV, ArcV), 7));
      B.emitStore(Out + 24, W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    Reg T = emitAluWork(B, 40, PV);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 89, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
