//===- workloads/Twolf.cpp - 300.twolf analog --------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard-cell cost evaluation: ~9% of epochs update the shared net cost
/// *early*, while every epoch reads it at the very end of its evaluation.
/// Under plain TLS the producer's store always precedes the consumer's
/// late load in time, so violations essentially never happen — the profile
/// still reports the dependence as frequent, the compiler synchronizes it,
/// and the synchronization code is pure overhead: the small performance
/// degradation the paper reports for TWOLF (Section 4.2, third bullet).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildTwolf(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x300300 : 0x300042);

  uint64_t NetCost = P->addGlobal("net_cost", 8);
  uint64_t Cells = P->addGlobal("cells", 128 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(NetCost, 500);
  {
    LoopBlocks Init = makeCountedLoop(B, 128, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Cells);
    B.emitStore(A, B.emitMul(Init.IndVar, 7));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 850 : 340;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 230;
  emitCoverageFiller(B, RegionEstimate / 2, 19, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Upd = &Main.addBlock("update");
  BasicBlock *Skip = &Main.addBlock("skip");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();

    // ~9% of epochs adjust the net cost right away (early store).
    Reg DoUpd = emitPercentFlag(B, R, 0, 9);
    B.emitCondBr(DoUpd, *Upd, *Skip);
    B.setInsertPoint(&Main, Upd);
    {
      B.emitStore(NetCost, B.emitOr(B.emitAnd(R, 0xffff), 1));
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Skip);
    {
      B.emitStore(Out + 16, R);
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Join);

    // Long placement evaluation.
    Reg CV = B.emitLoad(
        B.emitAdd(B.emitShl(B.emitAnd(R, 127), 3), Cells));
    Reg W = emitAluWork(B, 160, B.emitXor(CV, R));

    // The late cost read every epoch (profiled frequent; never violates).
    Reg Cost = B.emitLoad(NetCost);
    Reg T = emitAluWork(B, 15, B.emitAdd(W, Cost));
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 19, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
