//===- workloads/ScaledKernels.cpp - 10-100x trip-count variants -*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaled variants of the compressor and parser kernels for profiling-cost
/// studies (bench/profile_scaling): the parallel loop runs SPECSYNC_SCALE
/// times the parent's trip count (default 10x, clamped to [1, 1000]), and
/// each epoch is deliberately *load-heavy* — two dozen hash-probe loads per
/// carried store — because sampled profiling only elides load-side
/// observation; stores are shadow-tracked in every epoch to keep writer
/// identities exact. The load:store ratio is what the measured profiling
/// speedup scales with.
///
/// Not Table 2 rows: registered via extraWorkloads() so every existing
/// figure/table binary's output is unchanged.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

#include <cstdlib>

using namespace specsync;

namespace {

/// SPECSYNC_SCALE, defaulting to 10x and clamped to [1, 1000]. Read at
/// build time, so two builds under the same environment are identical.
int64_t scaleFactor() {
  if (const char *E = std::getenv("SPECSYNC_SCALE")) {
    long V = std::strtol(E, nullptr, 10);
    if (V >= 1 && V <= 1000)
      return V;
  }
  return 10;
}

/// Emits the probe chain: \p Probes dependent loads from the 64-slot
/// table at \p TableAddr, each slot index derived from the running value.
Reg emitProbeChain(IRBuilder &B, unsigned Probes, uint64_t TableAddr,
                   Reg Seed) {
  Reg V = Seed;
  for (unsigned I = 0; I < Probes; ++I) {
    Reg Slot = B.emitAnd(B.emitShr(V, (I % 5) + 3), 63);
    Reg Word = B.emitLoad(B.emitAdd(B.emitShl(Slot, 3), TableAddr));
    V = B.emitXor(V, B.emitAdd(Word, I + 1));
  }
  return V;
}

/// Pre-region table initialization: fills the 64 slots deterministically.
void emitTableInit(IRBuilder &B, uint64_t TableAddr,
                   const std::string &Prefix) {
  LoopBlocks Init = makeCountedLoop(B, 64, Prefix);
  Reg Word = B.emitXor(B.emitShl(Init.IndVar, 5), 0x9e37);
  B.emitStore(B.emitAdd(B.emitShl(Init.IndVar, 3), TableAddr), Word);
  closeLoop(B, Init);
}

} // namespace

std::unique_ptr<Program> specsync::buildGzipCompXL(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x164c0fe1 : 0x16404271);

  uint64_t Head = P->addGlobal("head", 8);
  uint64_t Htab = P->addGlobal("htab", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(Head, 1);
  emitTableInit(B, Htab, "init");

  int64_t Epochs = (Ref ? 800 : 320) * scaleFactor();
  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();
    // The carried pair: head loaded early, stored late every epoch.
    Reg H = B.emitLoad(Head);
    Reg V = emitProbeChain(B, 24, Htab, B.emitXor(H, R));
    Reg W = emitAluWork(B, 40, V);
    B.emitStore(Head, B.emitOr(W, 1));
  }
  closeLoop(B, L);
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}

std::unique_ptr<Program> specsync::buildParserXL(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x197c0fe1 : 0x19704271);

  uint64_t FreeHead = P->addGlobal("free_head", 8);
  uint64_t Dict = P->addGlobal("dict", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(FreeHead, 1);
  emitTableInit(B, Dict, "init");

  int64_t Epochs = (Ref ? 600 : 240) * scaleFactor();
  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();
    // Free-list pop: the store lands early in the epoch (the parent
    // kernel's defining trait), then the epoch spends its time probing.
    Reg F = B.emitLoad(FreeHead);
    B.emitStore(FreeHead, B.emitOr(B.emitAdd(F, 3), 1));
    Reg V = emitProbeChain(B, 24, Dict, B.emitXor(F, R));
    emitAluWork(B, 40, V);
  }
  closeLoop(B, L);
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
