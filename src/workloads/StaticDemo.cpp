//===- workloads/StaticDemo.cpp - Static-analysis demo kernel ----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstration kernel for the static may-dependence engine. Every epoch
/// loads a shared accumulator early; an *input-gated* conditional store
/// updates it late in the epoch. The gate global is part of the input
/// data: the ref input enables the update path (~40% of epochs fire it,
/// so the ref profile reports the dependence as frequent), while the
/// train input never takes it — the (load, store) pair is completely
/// absent from the train profile. The static engine proves the pair
/// must-alias regardless of input (both references use the same constant
/// address), so the train-profile fusion force-synchronizes it: the
/// "statically-forced MUST_SYNC pair absent from the profile" case the
/// oracle exists to catch.
///
/// Not part of the paper's Table 2 set — registered via extraWorkloads()
/// so figure/table binaries are unaffected.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildStaticDemo(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x57A71CD0 : 0x57A71C42);

  uint64_t Shared = P->addGlobal("shared_acc", 8);
  uint64_t Gate = P->addGlobal("gate", 8);
  uint64_t Table = P->addGlobal("table", 64 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(Shared, 7);
  // The gate is input data, not code: train input never enables the
  // update path, so the dependence below never reaches the train profile.
  B.emitStore(Gate, Ref ? 1 : 0);
  {
    LoopBlocks Init = makeCountedLoop(B, 64, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Table);
    B.emitStore(A, B.emitMul(Init.IndVar, 13));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 120;
  emitCoverageFiller(B, RegionEstimate / 2, 20, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Upd = &Main.addBlock("update");
  BasicBlock *Skip = &Main.addBlock("skip");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();

    // The consumer: every epoch reads the shared accumulator up front.
    Reg Acc = B.emitLoad(Shared);
    Reg W = emitAluWork(B, 60, B.emitXor(Acc, R));
    Reg TV =
        B.emitLoad(B.emitAdd(B.emitShl(B.emitAnd(R, 63), 3), Table));
    Reg W2 = emitAluWork(B, 20, B.emitAdd(W, TV));

    // The producer: gated on input data AND a ~40% per-epoch coin.
    Reg G = B.emitLoad(Gate);
    Reg Hot = emitPercentFlag(B, R, 3, 40);
    Reg Do = B.emitAnd(G, Hot);
    B.emitCondBr(Do, *Upd, *Skip);
    B.setInsertPoint(&Main, Upd);
    {
      B.emitStore(Shared, B.emitOr(B.emitAnd(W2, 0xffff), 1));
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Skip);
    {
      B.emitStore(Out + 24, W2);
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Join);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W2, 63), 3), Out), W2);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 20, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
