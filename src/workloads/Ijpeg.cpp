//===- workloads/Ijpeg.cpp - 132.ijpeg analog --------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-transform loop: epochs process independent image blocks (8 loads,
/// transform, 8 stores to disjoint output words) — nearly perfectly
/// parallel, so TLS wins out of the box (paper: region speedup ~1.7 at 97%
/// coverage). A small quality-accumulator dependence (updated on ~7% of
/// epochs, decided early) gives the compiler one group to synchronize so
/// the sync-cost idealizations of Figure 9 have something to vary.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildIjpeg(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x132132 : 0x132042);

  constexpr unsigned Blocks = 512;
  uint64_t Img = P->addGlobal("img", Blocks * 8 * 8);
  uint64_t OutImg = P->addGlobal("out_img", Blocks * 8 * 8);
  uint64_t QSum = P->addGlobal("qsum", 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, Blocks * 8, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Img);
    B.emitStore(A, B.emitMul(Init.IndVar, 2654435761));
    closeLoop(B, Init);
    B.emitStore(QSum, 0);
  }

  int64_t Epochs = Ref ? 900 : 350;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 220;
  emitCoverageFiller(B, RegionEstimate / 2, 97, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Qual = &Main.addBlock("qual");
  BasicBlock *NoQual = &Main.addBlock("noqual");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    Reg Blk = B.emitMod(L.IndVar, Blocks);
    Reg Base = B.emitAdd(B.emitShl(B.emitShl(Blk, 3), 3), Img);
    Reg OBase = B.emitAdd(B.emitShl(B.emitShl(Blk, 3), 3), OutImg);

    // Quality-sum dependence: load early, decide early, and store early on
    // the rare path — its value never arrives late, so neither plain TLS
    // nor synchronized execution pays for it (IJPEG is essentially
    // independent; the group exists so Figure 9's E/L idealizations have a
    // knob).
    Reg Q = B.emitLoad(QSum);
    Reg DoQ = emitPercentFlag(B, R, 0, 7);
    B.emitCondBr(DoQ, *Qual, *NoQual);
    B.setInsertPoint(&Main, Qual);
    {
      B.emitStore(QSum, B.emitOr(B.emitAdd(Q, R), 1));
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, NoQual);
    {
      B.emitStore(Scratch + 8, Q);
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Join);

    // Transform: 8 loads, butterfly-ish mixing, 8 stores.
    Reg Acc = B.emitConst(0);
    for (unsigned K = 0; K < 8; ++K) {
      Reg V = B.emitLoad(B.emitAdd(Base, K * 8));
      Reg W = emitAluWork(B, 10, B.emitXor(V, Acc));
      B.emitStore(B.emitAdd(OBase, K * 8), W);
      Acc = B.emitAdd(Acc, W);
    }
    Reg T = emitAluWork(B, 20, Acc);
    B.emitStore(Scratch + 16, T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 97, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
