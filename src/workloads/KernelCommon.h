//===- workloads/KernelCommon.h - Kernel-building helpers ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_WORKLOADS_KERNELCOMMON_H
#define SPECSYNC_WORKLOADS_KERNELCOMMON_H

#include "ir/IRBuilder.h"

#include <string>

namespace specsync {

/// Blocks of a counted loop created by makeCountedLoop. The caller fills
/// Body (and must terminate it with a branch to Latch), then continues
/// emitting at Exit.
struct LoopBlocks {
  BasicBlock *Preheader = nullptr; ///< Block that was current at creation.
  BasicBlock *Header = nullptr;
  BasicBlock *Body = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Exit = nullptr;
  Reg IndVar;
};

/// Creates `for (i = 0; i < TripCount; ++i)` scaffolding at the builder's
/// current insertion point and leaves the insertion point at Body.
LoopBlocks makeCountedLoop(IRBuilder &B, IRBuilder::V TripCount,
                           const std::string &Prefix);

/// Closes the body of \p L (branch to the latch) and moves the insertion
/// point to the loop exit.
void closeLoop(IRBuilder &B, const LoopBlocks &L);

/// Emits \p Ops straight-line ALU instructions mixing \p Seed (dependency
/// chain) — generic "compute" filler. Returns the chain's final register.
Reg emitAluWork(IRBuilder &B, unsigned Ops, Reg Seed);

/// Emits a cheap (divide-free) test that is true for ~\p Percent of the
/// values of bits [Shift, Shift+10) of \p R: used for early path decisions
/// whose timing matters (a Mod would stall the decision by the divide
/// latency).
Reg emitPercentFlag(IRBuilder &B, Reg R, unsigned Shift, unsigned Percent);

/// Emits a self-contained sequential loop of \p Iters iterations, each with
/// ~\p OpsPerIter ALU ops plus one load and one store on a private scratch
/// array at \p ScratchAddr (sized >= 64 words). Used to give benchmarks
/// realistic non-region coverage. Leaves the insertion point after the
/// loop.
void emitSeqFiller(IRBuilder &B, int64_t Iters, unsigned OpsPerIter,
                   uint64_t ScratchAddr, const std::string &Prefix);

/// Emits sequential filler sized so that a region of roughly
/// \p RegionInstsEstimate dynamic instructions ends up covering about
/// \p CoveragePercent of the program (the paper's Table 2 coverage
/// column). Call once before and once after the parallel loop with half
/// the region estimate each.
void emitCoverageFiller(IRBuilder &B, uint64_t RegionInstsEstimate,
                        unsigned CoveragePercent, uint64_t ScratchAddr,
                        const std::string &Prefix);

} // namespace specsync

#endif // SPECSYNC_WORKLOADS_KERNELCOMMON_H
