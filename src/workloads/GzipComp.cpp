//===- workloads/GzipComp.cpp - 164.gzip compression analog ------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LZ-style compression loop with *input-sensitive control flow* (the
/// paper's explanation for why GZIP_COMP's train-profile results differ
/// from its ref-profile results): literal-path epochs update `lit_head`,
/// match-path epochs update `match_head`, and the path mix flips between
/// inputs (train ~96% literal, ref ~96% match). Profiling on train marks
/// the literal pair frequent and the match pair infrequent (<5%), so the
/// T binary synchronizes the wrong pair on the ref input.
///
/// Both heads are loaded early and stored late (~80% of the epoch), so the
/// baseline violates nearly every epoch and even synchronized execution
/// serializes heavily — GZIP_COMP's region stays below break-even, as in
/// the paper (region speedup ~0.7). Rare-path hash-chain loads in the
/// 5-15% frequency band make the 5% threshold matter (Figure 6).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildGzipComp(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x164c0f : 0x164042);

  uint64_t LitHead = P->addGlobal("lit_head", 8);
  uint64_t MatchHead = P->addGlobal("match_head", 8);
  uint64_t Chain = P->addGlobal("chain", 8); // Rare-path hash chain head.
  uint64_t Htab = P->addGlobal("htab", 64 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  // The input mix is the input: ref is match-heavy, train literal-heavy.
  int64_t LitPercent = Ref ? 4 : 96;

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(LitHead, 1);
  B.emitStore(MatchHead, 1);
  B.emitStore(Chain, 1);

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 220;
  emitCoverageFiller(B, RegionEstimate / 2, 25, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Lit = &Main.addBlock("lit");
  BasicBlock *Match = &Main.addBlock("match");
  BasicBlock *ChainUpd = &Main.addBlock("chainupd");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    Reg IsLit = emitPercentFlag(B, R, 0, static_cast<unsigned>(LitPercent));
    B.emitCondBr(IsLit, *Lit, *Match);

    // Literal path: load early, update late after encoding work.
    B.setInsertPoint(&Main, Lit);
    {
      Reg H = B.emitLoad(LitHead);
      Reg W = emitAluWork(B, 120, B.emitXor(H, R));
      B.emitStore(LitHead, B.emitOr(W, 1));
      B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W, 63), 3), Out), W);
      B.emitBr(*Join);
    }

    // Match path: symmetric, on the other head.
    B.setInsertPoint(&Main, Match);
    {
      Reg H = B.emitLoad(MatchHead);
      Reg W = emitAluWork(B, 120, B.emitAdd(H, R));
      B.emitStore(MatchHead, B.emitOr(W, 1));
      B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W, 63), 3), Out), W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    // Hash-chain maintenance runs in 16-epoch bursts covering ~12.5% of
    // epochs: a 5-15%-band load (Figure 6) whose violations only go away
    // at the 5% synchronization threshold.
    Reg Phase = B.emitAnd(B.emitShr(L.IndVar, 4), 7);
    Reg DoChain = B.emitCmp(Opcode::CmpEQ, Phase, 2);
    BasicBlock *ChainSkip = &Main.addBlock("chainskip");
    B.emitCondBr(DoChain, *ChainUpd, *ChainSkip);

    B.setInsertPoint(&Main, ChainUpd);
    {
      Reg C = B.emitLoad(Chain);
      Reg W = emitAluWork(B, 90, B.emitXor(C, R));
      B.emitStore(Chain, B.emitOr(W, 1));
      Reg Slot = B.emitAnd(B.emitShr(R, 16), 63);
      B.emitStore(B.emitAdd(B.emitShl(Slot, 3), Htab), W);
      B.emitBr(*ChainSkip);
    }

    B.setInsertPoint(&Main, ChainSkip);
    Reg T = emitAluWork(B, 30, L.IndVar);
    B.emitStore(Out + 8, T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 25, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
