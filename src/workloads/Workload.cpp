//===- workloads/Workload.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/Kernels.h"

using namespace specsync;

const std::vector<Workload> &specsync::allWorkloads() {
  // SeqDilation values model the paper's Table 2 sequential-region
  // slowdowns (a compiler-infrastructure artifact; see Workload.h).
  static const std::vector<Workload> Workloads = {
      {"GO", "099.go",
       "conditional late update of a hot influence cell (~12% of epochs)",
       0.90, buildGo},
      {"M88KSIM", "124.m88ksim",
       "register-file false sharing; small true dep on exception flag",
       0.82, buildM88ksim},
      {"IJPEG", "132.ijpeg",
       "independent block transforms; tiny quality-sum dependence",
       0.92, buildIjpeg},
      {"GZIP_COMP", "164.gzip (compress)",
       "input-sensitive literal/match paths; very frequent late stores",
       0.98, buildGzipComp},
      {"GZIP_DECOMP", "164.gzip (decompress)",
       "window-position chain every epoch; value available mid-epoch",
       0.97, buildGzipDecomp},
      {"VPR_PLACE", "175.vpr (place)",
       "position-array false sharing; rarely-violating profiled cost dep",
       0.97, buildVprPlace},
      {"GCC", "176.gcc",
       "symbol-table dep two calls deep (exercises procedure cloning)",
       0.94, buildGcc},
      {"MCF", "181.mcf",
       "sparse potential updates (~20% of epochs, 64 slots)",
       0.99, buildMcf},
      {"CRAFTY", "186.crafty",
       "read-mostly transposition probes; rare history updates",
       0.92, buildCrafty},
      {"PARSER", "197.parser",
       "the paper's free-list example: frequent early store through calls",
       0.84, buildParser},
      {"PERLBMK", "253.perlbmk",
       "reference counts of eight shared objects, one hot",
       1.00, buildPerlbmk},
      {"GAP", "254.gap",
       "bump allocator with short epochs and a deep allocation point",
       0.82, buildGap},
      {"BZIP2_COMP", "256.bzip2 (compress)",
       "layered counters with 5-15%-band dependences (Figure 6)",
       0.96, buildBzip2Comp},
      {"BZIP2_DECOMP", "256.bzip2 (decompress)",
       "fully independent block decode; speculation never fails",
       0.99, buildBzip2Decomp},
      {"TWOLF", "300.twolf",
       "early store / very late load: profiled-frequent but never violates",
       0.84, buildTwolf},
  };
  return Workloads;
}

const std::vector<Workload> &specsync::extraWorkloads() {
  static const std::vector<Workload> Extras = {
      {"GZIP_COMP_XL", "164.gzip (compress, scaled)",
       "load-heavy scaled compressor: carried head pair plus a 24-probe "
       "hash chain per epoch; trip count scales with SPECSYNC_SCALE",
       0.98, buildGzipCompXL},
      {"PARSER_XL", "197.parser (scaled)",
       "load-heavy scaled free-list pop (early store) plus a 24-probe "
       "dictionary chain per epoch; trip count scales with SPECSYNC_SCALE",
       0.84, buildParserXL},
      {"STATIC_DEMO", "(none; analysis demo)",
       "input-gated producer: absent from the train profile, provably "
       "must-alias — forces a static MUST_SYNC",
       1.00, buildStaticDemo},
      {"REMEDY_DEMO", "(none; remediator demo)",
       "always-firing reduction chain plus an epoch-local scratch word "
       "false-sharing a hot line — cured by Reduce + privatization",
       1.00, buildRemedyDemo},
  };
  return Extras;
}

const Workload *specsync::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  for (const Workload &W : extraWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
