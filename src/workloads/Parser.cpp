//===- workloads/Parser.cpp - 197.parser analog ------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's own running example (Figure 4): a loop that calls
/// free_element() every iteration to push onto a linked free list rooted at
/// the global `free_list`, and occasionally calls work() -> use_element()
/// to pop from it. The head pointer is read and written through procedure
/// calls — the canonical frequently-occurring memory-resident dependence.
///
/// Dependence character: (load free_list, store free_list) inside
/// free_element occurs every epoch at distance 1; the store sits early in
/// the epoch, so compiler-forwarded values arrive almost immediately and
/// synchronization wins big (paper: region speedup ~2.1). The epoch length
/// varies (input-dependent pre-work), so under plain TLS the store of one
/// epoch frequently lands after the next epoch's load -> constant
/// violations. use_element runs on ~4% of epochs — below the 5% threshold,
/// so grouping keeps the free_element pair alone (Figure 5's point).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildParser(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x197197 : 0x197042);

  constexpr unsigned PoolElems = 256;
  constexpr unsigned ElemBytes = 32; // next pointer + 3 data words.
  uint64_t FreeList = P->addGlobal("free_list", 8);
  uint64_t Pool = P->addGlobal("pool", PoolElems * ElemBytes);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Sink = P->addGlobal("sink", 64 * 8);

  Function &Main = P->addFunction("main", 0);

  // void free_element(e): e->next = free_list; free_list = e;
  Function &FreeElem = P->addFunction("free_element", 1);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = FreeElem.addBlock("entry");
    B.setInsertPoint(&FreeElem, &Entry);
    Reg E = B.param(0);
    Reg Head = B.emitLoad(FreeList);       // ld free_list (synced load).
    B.emitStore(E, Head);                  // e->next = head.
    B.emitStore(FreeList, E);              // st free_list (synced store).
    B.emitRet(0);
  }

  // elem use_element(): e = free_list; free_list = e->next; return e;
  Function &UseElem = P->addFunction("use_element", 0);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = UseElem.addBlock("entry");
    B.setInsertPoint(&UseElem, &Entry);
    Reg E = B.emitLoad(FreeList);
    Reg Next = B.emitLoad(E);
    B.emitStore(FreeList, Next);
    B.emitRet(E);
  }

  // void work(sel): if (sel) consume an element.
  Function &Work = P->addFunction("work", 1);
  {
    IRBuilder B(*P);
    BasicBlock &Entry = Work.addBlock("entry");
    BasicBlock &Use = Work.addBlock("use");
    BasicBlock &Done = Work.addBlock("done");
    B.setInsertPoint(&Work, &Entry);
    B.emitCondBr(B.param(0), Use, Done);
    B.setInsertPoint(&Work, &Use);
    Reg E = B.emitCall(UseElem, {});
    Reg D = B.emitLoad(B.emitAdd(E, 8));
    B.emitStore(B.emitAdd(E, 16), B.emitAdd(D, 1));
    B.emitBr(Done);
    B.setInsertPoint(&Work, &Done);
    B.emitRet(0);
  }

  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);

  // Build the initial free list: pool[i].next = pool[i+1], last -> 0.
  {
    LoopBlocks Init = makeCountedLoop(B, PoolElems - 1, "init");
    Reg Cur = B.emitAdd(B.emitMul(Init.IndVar, ElemBytes), Pool);
    Reg Next = B.emitAdd(Cur, ElemBytes);
    B.emitStore(Cur, Next);
    closeLoop(B, Init);
    B.emitStore(Pool + (PoolElems - 1) * ElemBytes, 0);
    B.emitStore(FreeList, Pool);
  }

  int64_t Epochs = Ref ? 900 : 350;
  // Epoch ~ 170 dynamic instructions; coverage target 37%.
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 170;
  emitCoverageFiller(B, RegionEstimate / 2, 37, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();

    // Input-dependent pre-work: 2..12 inner iterations jitter the offset
    // of the free-list access across epochs, so under plain TLS one
    // epoch's store frequently lands after the next epoch's load.
    Reg Trip = B.emitAdd(B.emitMod(R, 11), 2);
    LoopBlocks Pre = makeCountedLoop(B, Trip, "prework");
    Reg T = emitAluWork(B, 8, Pre.IndVar);
    B.emitStore(Sink + 40, T);
    closeLoop(B, Pre);

    // The element recycled this iteration.
    Reg Idx = B.emitMod(B.emitMul(L.IndVar, 7), PoolElems);
    Reg Elem = B.emitAdd(B.emitMul(Idx, ElemBytes), Pool);
    B.emitCall(FreeElem, {Elem});

    // work() consumes an element on ~3% of epochs (below the 5% grouping
    // threshold; the use_element accesses stay unsynchronized, and its
    // store after free_element's signal exercises the signal address
    // buffer restart).
    Reg Sel = emitPercentFlag(B, R, 0, 3);
    B.emitCall(Work, {Sel});

    // Post-work: dictionary-ish hashing into a private sink.
    Reg H = emitAluWork(B, 60, R);
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(H, 63), 3), Sink), H);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 37, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
