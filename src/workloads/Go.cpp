//===- workloads/Go.cpp - 099.go analog --------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Move-evaluation loop: every epoch reads a hot "influence" cell early and
/// re-evaluates board positions; ~12% of epochs update the hot cell late in
/// the epoch. The store-much-later-than-load pattern makes plain TLS
/// violate whenever the producing epoch is close; compiler sync forwards
/// the value (or an early NULL on the 88% of epochs that take the
/// no-update branch, decided early), so GO is a compiler-sync winner
/// (paper: C best; region speedup ~1.3).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildGo(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x990099 : 0x990042);

  uint64_t Board = P->addGlobal("board", 64 * 8);
  uint64_t Infl = P->addGlobal("influence", 64 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);
  const uint64_t HotCell = Infl + 5 * 8;

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);

  // Board setup.
  {
    LoopBlocks Init = makeCountedLoop(B, 64, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Board);
    B.emitStore(A, B.emitMul(Init.IndVar, 2654435761));
    closeLoop(B, Init);
    B.emitStore(HotCell, 17);
  }

  int64_t Epochs = Ref ? 800 : 300;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 230;
  emitCoverageFiller(B, RegionEstimate / 2, 22, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Update = &Main.addBlock("update");
  BasicBlock *NoUpdate = &Main.addBlock("noupdate");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    // Early: read the hot influence cell (the synchronized load).
    Reg V = B.emitLoad(HotCell);

    // Decide early whether this move updates influence (~22% of epochs);
    // the taken branch determines whether a value will be produced, which
    // lets the compiler signal NULL right away on the common path.
    Reg DoUpd = emitPercentFlag(B, R, 0, 22);
    B.emitCondBr(DoUpd, *Update, *NoUpdate);

    B.setInsertPoint(&Main, Update);
    {
      // Long evaluation before the influence update lands (late store).
      Reg BAddr = B.emitAdd(B.emitShl(B.emitAnd(R, 63), 3), Board);
      Reg BV = B.emitLoad(BAddr);
      Reg W = emitAluWork(B, 150, B.emitXor(BV, V));
      B.emitStore(HotCell, B.emitOr(W, 1)); // The synchronized store.
      B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W, 63), 3), Out), W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, NoUpdate);
    {
      Reg BAddr = B.emitAdd(B.emitShl(B.emitAnd(R, 63), 3), Board);
      Reg BV = B.emitLoad(BAddr);
      Reg W = emitAluWork(B, 110, B.emitAdd(BV, V));
      B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W, 63), 3), Out), W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    Reg T = emitAluWork(B, 40, L.IndVar);
    B.emitStore(Out + 8, T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 22, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
