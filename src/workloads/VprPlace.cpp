//===- workloads/VprPlace.cpp - 175.vpr placement analog ---------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated-annealing placement loop: epochs propose cell swaps, writing
/// adjacent entries of a packed position array late in the epoch and
/// reading other entries shortly before — so, as in M88KSIM, most
/// violations come from cache-line false sharing the compiler's word-level
/// profile cannot see. The profiled true dependence (the accepted-swap
/// cost update) rarely violates because its store precedes the consumer's
/// late load, so compiler sync only adds overhead; hardware-inserted
/// synchronization of the actually-violating loads wins (paper:
/// VPR_PLACE best with H).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildVprPlace(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x175175 : 0x175042);

  // 64 words = 16 lines: swaps write even words, the neighbour check reads
  // the adjacent odd word (same line, never written) — false sharing.
  uint64_t Pos = P->addGlobal("positions", 64 * 8);
  uint64_t Cost = P->addGlobal("cost", 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, 64, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Pos);
    B.emitStore(A, B.emitMul(Init.IndVar, 3));
    closeLoop(B, Init);
    B.emitStore(Cost, 1000);
  }

  int64_t Epochs = Ref ? 900 : 350;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 240;
  emitCoverageFiller(B, RegionEstimate / 2, 99, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Accept = &Main.addBlock("accept");
  BasicBlock *Reject = &Main.addBlock("reject");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    // Cost read (early) + early accept decision (~10%): the profiled true
    // dependence. Its store happens mid-epoch while the *next* epoch reads
    // early — but the late position reads below dominate violations.
    Reg CV = B.emitLoad(Cost);
    Reg Acc = emitPercentFlag(B, R, 0, 10);
    B.emitCondBr(Acc, *Accept, *Reject);

    B.setInsertPoint(&Main, Accept);
    {
      Reg W = emitAluWork(B, 70, B.emitAdd(CV, R));
      B.emitStore(Cost, B.emitOr(B.emitAnd(W, 0xffff), 1));
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Reject);
    {
      Reg W = emitAluWork(B, 70, B.emitXor(CV, R));
      B.emitStore(Out + 16, W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    Reg W1 = emitAluWork(B, 60, R);

    // Late neighbour read: the odd word adjacent to the previous epoch's
    // even-word write — same 32-byte line, never itself written (false
    // sharing the compiler's word-level profile cannot see).
    Reg Nb = B.emitAdd(
        B.emitShl(B.emitAnd(B.emitAdd(L.IndVar, 31), 31), 1), 1);
    Reg NV = B.emitLoad(B.emitAdd(B.emitShl(Nb, 3), Pos));
    Reg W2 = emitAluWork(B, 40, B.emitXor(W1, NV));

    // Very late position write (even words only).
    Reg Cell = B.emitShl(B.emitAnd(L.IndVar, 31), 1);
    B.emitStore(B.emitAdd(B.emitShl(Cell, 3), Pos), W2);

    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W2, 63), 3), Out), W2);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 99, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
