//===- workloads/Kernels.h - Benchmark kernel builders ---------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the 15 SPEC-analog kernels (one per Table 2 row). Private
/// to the workloads library; use the Workload registry from outside.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_WORKLOADS_KERNELS_H
#define SPECSYNC_WORKLOADS_KERNELS_H

#include "workloads/Workload.h"

namespace specsync {

std::unique_ptr<Program> buildGo(InputKind Input);          // 099.go
std::unique_ptr<Program> buildM88ksim(InputKind Input);     // 124.m88ksim
std::unique_ptr<Program> buildIjpeg(InputKind Input);       // 132.ijpeg
std::unique_ptr<Program> buildGzipComp(InputKind Input);    // 164.gzip comp
std::unique_ptr<Program> buildGzipDecomp(InputKind Input);  // 164.gzip decomp
std::unique_ptr<Program> buildVprPlace(InputKind Input);    // 175.vpr place
std::unique_ptr<Program> buildGcc(InputKind Input);         // 176.gcc
std::unique_ptr<Program> buildMcf(InputKind Input);         // 181.mcf
std::unique_ptr<Program> buildCrafty(InputKind Input);      // 186.crafty
std::unique_ptr<Program> buildParser(InputKind Input);      // 197.parser
std::unique_ptr<Program> buildPerlbmk(InputKind Input);     // 253.perlbmk
std::unique_ptr<Program> buildGap(InputKind Input);         // 254.gap
std::unique_ptr<Program> buildBzip2Comp(InputKind Input);   // 256.bzip2 comp
std::unique_ptr<Program> buildBzip2Decomp(InputKind Input); // 256.bzip2 dec.
std::unique_ptr<Program> buildTwolf(InputKind Input);       // 300.twolf

/// Scaled load-heavy variants of the compressor / parser kernels for the
/// profiling-cost study (extraWorkloads(), not Table 2 rows). Trip count
/// is the parent's times SPECSYNC_SCALE (default 10x, clamp [1, 1000]).
std::unique_ptr<Program> buildGzipCompXL(InputKind Input);
std::unique_ptr<Program> buildParserXL(InputKind Input);

/// Static-analysis demo (extraWorkloads(), not a Table 2 row): an
/// input-gated producer the train profile never sees but the static
/// engine proves must-alias — exercising the oracle's forced-sync path.
std::unique_ptr<Program> buildStaticDemo(InputKind Input);

/// Remediator-ensemble demo (extraWorkloads(), not a Table 2 row): a
/// 100%-frequent reduction chain plus an epoch-local scratch word that
/// false-shares a line with a hot read-only word — exercising the Reduce
/// rewrite and store privatization end-to-end.
std::unique_ptr<Program> buildRemedyDemo(InputKind Input);

} // namespace specsync

#endif // SPECSYNC_WORKLOADS_KERNELS_H
