//===- workloads/Workload.h - SPEC-analog benchmark registry ---*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on SPEC CPU95/2000 integer benchmarks. We cannot
/// ship SPEC, so each benchmark is represented by a mini-kernel written in
/// the SpecSync IR whose *parallelized loop has the dependence character
/// the paper reports for that benchmark* (frequency, distance, position of
/// loads/stores within the epoch, false sharing, input sensitivity) —
/// realized by real computations (hash chains, free lists, bump
/// allocators, ...), not by trace playback. See DESIGN.md, substitution
/// table.
///
/// Each workload builds deterministically: two builds with the same input
/// kind produce identical programs (identical static ids), and train/ref
/// builds differ only in seeds/sizes/initial data — which is what lets a
/// train-input profile drive a ref-input compilation (the paper's T bars).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_WORKLOADS_WORKLOAD_H
#define SPECSYNC_WORKLOADS_WORKLOAD_H

#include "ir/Program.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace specsync {

enum class InputKind { Train, Ref };

/// One benchmark: metadata plus a deterministic program builder.
struct Workload {
  std::string Name;     ///< Short name used in figures, e.g. "PARSER".
  std::string SpecName; ///< The SPEC benchmark it stands in for.
  std::string Character; ///< One-line dependence-character summary.

  /// Sequential-region dilation modeling the paper's measurement artifact
  /// (inline-asm instrumentation inhibiting gcc optimization; Table 2's
  /// "sequential region speedup" column). Applied only in whole-program
  /// accounting (Figure 12 / Table 2); 1.0 = no artifact.
  double SeqDilation = 1.0;

  std::function<std::unique_ptr<Program>(InputKind)> Build;
};

/// All 15 benchmarks in the paper's Table 2 order.
const std::vector<Workload> &allWorkloads();

/// Demonstration workloads that are not part of the paper's Table 2 set.
/// Kept out of allWorkloads() so every figure/table binary's output is
/// unchanged; findWorkload() searches them too.
const std::vector<Workload> &extraWorkloads();

/// Finds a workload by short name (Table 2 set first, then the extras);
/// nullptr if unknown.
const Workload *findWorkload(const std::string &Name);

} // namespace specsync

#endif // SPECSYNC_WORKLOADS_WORKLOAD_H
