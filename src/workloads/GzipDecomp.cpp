//===- workloads/GzipDecomp.cpp - 164.gzip decompression analog --*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decompression loop: every epoch decodes a token (mid-length work),
/// advances the memory-resident window position `wpos`, then performs the
/// window copy. The dependence occurs every epoch at distance 1, the load
/// is the first thing the epoch does, and the new value is stored at ~45%
/// of the epoch: the compiler's signal fires right after that store, while
/// the hardware scheme can only release the consumer at the producer's
/// *completion* — so compiler sync forwards the value much earlier and
/// wins (paper Section 4.2's GZIP_DECOMP bullet; C > H > U).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildGzipDecomp(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x164dec : 0x164043);

  constexpr uint64_t WindowWords = 2048;
  uint64_t Wpos = P->addGlobal("wpos", 8);
  uint64_t Window = P->addGlobal("window", WindowWords * 8);
  uint64_t Src = P->addGlobal("src", 512 * 8); // Read-only literal bytes.
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  B.emitStore(Wpos, 512);
  {
    LoopBlocks Init = makeCountedLoop(B, 512, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Src);
    B.emitStore(A, B.emitMul(Init.IndVar, 40503));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 230;
  emitCoverageFiller(B, RegionEstimate / 2, 99, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg R = B.emitRand();

    // The synchronized load: first instruction of the epoch's real work.
    Reg Pos = B.emitLoad(Wpos);

    // Token decode: this work determines the copy length, so the updated
    // wpos cannot be stored any earlier than ~45% into the epoch.
    Reg D = emitAluWork(B, 80, B.emitXor(R, Pos));
    Reg Len = B.emitAdd(B.emitAnd(D, 7), 1);

    // Advance the window position (the synchronized store + early signal).
    B.emitStore(Wpos, B.emitAdd(Pos, Len));

    // Emit Len words into the window, sourced from the (read-only) input
    // stream: stores land in mostly-distinct words per epoch, so the only
    // recurring inter-epoch dependence is the wpos chain above.
    Reg SrcBase = B.emitAnd(B.emitShr(D, 4), 255);
    LoopBlocks Copy = makeCountedLoop(B, Len, "copy");
    {
      Reg SrcIdx = B.emitAnd(B.emitAdd(SrcBase, Copy.IndVar), 511);
      Reg DstIdx = B.emitAnd(B.emitAdd(Pos, Copy.IndVar), WindowWords - 1);
      Reg V = B.emitLoad(B.emitAdd(B.emitShl(SrcIdx, 3), Src));
      B.emitStore(B.emitAdd(B.emitShl(DstIdx, 3), Window),
                  B.emitAdd(V, 1));
    }
    closeLoop(B, Copy);

    Reg T = emitAluWork(B, 30, Len);
    B.emitStore(Scratch + 8, T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 99, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
