//===- workloads/Bzip2Decomp.cpp - 256.bzip2 decompression analog -*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent block decode: epochs read disjoint input words and write
/// disjoint output words — no shared state at all, so failed speculation
/// "was not a problem to begin with" (paper Section 4.1) and every
/// synchronization technique leaves the region unchanged (speedup ~1.66 at
/// 13% coverage).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildBzip2Decomp(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x256dec : 0x256043);

  constexpr unsigned Blocks = 1024;
  uint64_t In = P->addGlobal("in", Blocks * 8);
  uint64_t OutBuf = P->addGlobal("out_buf", Blocks * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, Blocks, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), In);
    B.emitStore(A, B.emitMul(Init.IndVar, 2654435761));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 210;
  emitCoverageFiller(B, RegionEstimate / 2, 13, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  {
    Reg Blk = B.emitMod(L.IndVar, Blocks);
    Reg V = B.emitLoad(B.emitAdd(B.emitShl(Blk, 3), In));
    Reg W = emitAluWork(B, 170, V);
    B.emitStore(B.emitAdd(B.emitShl(Blk, 3), OutBuf), W);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 13, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
