//===- workloads/Crafty.cpp - 186.crafty analog ------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search loop probing a large read-only transposition table; only ~3% of
/// epochs touch the shared history table, and those writes hit random
/// slots, so inter-epoch dependences are rare and violations rarer still —
/// plain TLS already speeds the region up, and neither synchronization
/// technique changes much (paper: region speedup ~1.16).
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildCrafty(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x186186 : 0x186042);

  uint64_t TTable = P->addGlobal("ttable", 256 * 8); // Read-only after init.
  // Killer-move reads and history writes use disjoint halves: stores are
  // rare and never feed later epochs' reads, so CRAFTY has no frequent
  // inter-epoch dependence at all — "failed speculation was not a problem
  // to begin with".
  uint64_t Hist = P->addGlobal("history", 64 * 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);
  {
    LoopBlocks Init = makeCountedLoop(B, 256, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), TTable);
    B.emitStore(A, B.emitMul(Init.IndVar, 2246822519));
    closeLoop(B, Init);
  }

  int64_t Epochs = Ref ? 800 : 320;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 240;
  emitCoverageFiller(B, RegionEstimate / 2, 14, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Hit = &Main.addBlock("hit");
  BasicBlock *Miss = &Main.addBlock("miss");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    Reg HV = B.emitLoad(B.emitAdd(
        B.emitShl(B.emitAdd(B.emitAnd(B.emitShr(R, 3), 31), 32), 3), Hist));

    Reg P1 = B.emitLoad(
        B.emitAdd(B.emitShl(B.emitAnd(R, 255), 3), TTable));
    Reg P2 = B.emitLoad(
        B.emitAdd(B.emitShl(B.emitAnd(B.emitShr(R, 8), 255), 3), TTable));

    // ~3% of epochs update the history heuristic; the cutoff decision is
    // available right after the probes.
    Reg DoHist = emitPercentFlag(B, R, 0, 3);
    B.emitCondBr(DoHist, *Hit, *Miss);

    B.setInsertPoint(&Main, Hit);
    {
      // The history update needs only the probe results: store early, then
      // keep searching.
      Reg Slot = B.emitAnd(B.emitShr(R, 16), 31);
      B.emitStore(B.emitAdd(B.emitShl(Slot, 3), Hist),
                  B.emitOr(B.emitXor(P1, P2), 1));
      Reg W1 = emitAluWork(B, 140, B.emitXor(P1, B.emitXor(P2, HV)));
      B.emitStore(Out + 40, W1);
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, Miss);
    {
      Reg W1 = emitAluWork(B, 150, B.emitXor(P1, B.emitAdd(P2, HV)));
      B.emitStore(Out + 32, W1);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    Reg T = emitAluWork(B, 30, B.emitAdd(P1, P2));
    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(T, 63), 3), Out), T);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 14, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
