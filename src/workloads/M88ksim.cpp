//===- workloads/M88ksim.cpp - 124.m88ksim analog ----------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CPU-simulator loop: each epoch emulates one instruction, writing the
/// destination entry of a 32-entry register file late in the epoch and
/// reading a source entry somewhat earlier. Consecutive epochs write
/// *adjacent* words, so reads and writes of different registers constantly
/// share 32-byte cache lines: violations are dominated by **false
/// sharing**, which word-granularity dependence profiling cannot see (true
/// same-word dependences stay under the 5% threshold) but line-granularity
/// hardware tracking trips on. Hardware-inserted synchronization therefore
/// wins (paper Section 4.2's first bullet), while compiler sync only covers
/// a small true dependence through the exception flag.
///
//===----------------------------------------------------------------------===//

#include "workloads/KernelCommon.h"
#include "workloads/Kernels.h"

using namespace specsync;

std::unique_ptr<Program> specsync::buildM88ksim(InputKind Input) {
  auto P = std::make_unique<Program>();
  bool Ref = Input == InputKind::Ref;
  P->setRandSeed(Ref ? 0x124124 : 0x124042);

  // 64 words = 16 lines. Emulated writes touch only even words; the
  // source read touches the odd word next to the previous epoch's write —
  // same line (false sharing), never a word any epoch writes.
  uint64_t Regs = P->addGlobal("regfile", 64 * 8);
  uint64_t Exc = P->addGlobal("exc_flag", 8);
  uint64_t Scratch = P->addGlobal("scratch", 64 * 8);
  uint64_t Out = P->addGlobal("out", 64 * 8);

  Function &Main = P->addFunction("main", 0);
  IRBuilder B(*P);
  BasicBlock &Entry = Main.addBlock("entry");
  B.setInsertPoint(&Main, &Entry);

  {
    LoopBlocks Init = makeCountedLoop(B, 64, "init");
    Reg A = B.emitAdd(B.emitShl(Init.IndVar, 3), Regs);
    B.emitStore(A, B.emitAdd(Init.IndVar, 100));
    closeLoop(B, Init);
    B.emitStore(Exc, 0);
  }

  int64_t Epochs = Ref ? 900 : 350;
  uint64_t RegionEstimate = static_cast<uint64_t>(Epochs) * 260;
  emitCoverageFiller(B, RegionEstimate / 2, 56, Scratch, "pre");

  LoopBlocks L = makeCountedLoop(B, Epochs, "par");
  BasicBlock *Trap = &Main.addBlock("trap");
  BasicBlock *NoTrap = &Main.addBlock("notrap");
  BasicBlock *Join = &Main.addBlock("join");
  {
    Reg R = B.emitRand();
    // Exception-flag true dependence (small; gives the compiler something
    // to synchronize so the E/L idealizations of Figure 9 are visible).
    Reg EV = B.emitLoad(Exc);

    Reg DoTrap = emitPercentFlag(B, R, 0, 8);
    B.emitCondBr(DoTrap, *Trap, *NoTrap);

    B.setInsertPoint(&Main, Trap);
    {
      Reg W = emitAluWork(B, 30, B.emitAdd(EV, R));
      B.emitStore(Exc, B.emitAnd(W, 255)); // Mid-epoch exception update.
      B.emitBr(*Join);
    }
    B.setInsertPoint(&Main, NoTrap);
    {
      Reg W = emitAluWork(B, 30, B.emitXor(EV, R));
      B.emitStore(Out + 16, W);
      B.emitBr(*Join);
    }

    B.setInsertPoint(&Main, Join);
    // Decode + execute emulation (long).
    Reg W1 = emitAluWork(B, 110, R);

    // Source register read: the odd word adjacent to the previous epoch's
    // (even-word) write — never a word any epoch writes, so the
    // word-granularity profile shows no dependence at all, yet it shares a
    // 32-byte line with the write: pure false sharing, every epoch.
    Reg Src = B.emitAdd(
        B.emitShl(B.emitAnd(B.emitAdd(L.IndVar, 31), 31), 1), 1);
    Reg SrcV = B.emitLoad(B.emitAdd(B.emitShl(Src, 3), Regs));

    Reg W2 = emitAluWork(B, 60, B.emitXor(W1, SrcV));

    // Destination register write, very late: even words only, adjacent
    // lines cycled by consecutive epochs.
    Reg Dst = B.emitShl(B.emitAnd(L.IndVar, 31), 1);
    B.emitStore(B.emitAdd(B.emitShl(Dst, 3), Regs), W2);

    B.emitStore(B.emitAdd(B.emitShl(B.emitAnd(W2, 63), 3), Out), W2);
  }
  closeLoop(B, L);

  emitCoverageFiller(B, RegionEstimate / 2, 56, Scratch, "post");
  B.emitRet(0);

  P->setEntry(Main.getIndex());
  P->setRegion(RegionSpec{Main.getIndex(), L.Header->getIndex()});
  P->assignIds();
  return P;
}
