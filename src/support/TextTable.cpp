//===- support/TextTable.cpp ----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace specsync;

void TextTable::setHeader(std::vector<std::string> Columns) {
  assert(Rows.empty() && "header must be set before rows are added");
  Header = std::move(Columns);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Row.size(); ++I) {
      Line += Row[I];
      if (I + 1 == Row.size())
        break;
      Line.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out = renderRow(Header);
  size_t TotalWidth = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    TotalWidth += Widths[I] + (I + 1 == Widths.size() ? 0 : 2);
  Out.append(TotalWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

std::string TextTable::formatDouble(double Value, unsigned Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string specsync::renderStackedBar(const std::vector<BarSegment> &Segments,
                                       double UnitsPerCell) {
  assert(UnitsPerCell > 0 && "cell scale must be positive");
  std::string Bar;
  double Total = 0;
  for (const BarSegment &Seg : Segments) {
    Total += Seg.Value;
    int Cells = static_cast<int>(std::lround(Seg.Value / UnitsPerCell));
    Bar.append(static_cast<size_t>(Cells < 0 ? 0 : Cells), Seg.Tag);
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), " %.1f", Total);
  Bar += Buf;
  return Bar;
}
