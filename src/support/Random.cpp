//===- support/Random.cpp -------------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

using namespace specsync;

uint64_t Random::next() {
  // SplitMix64: passes BigCrush, two multiplies and three xorshifts.
  return advanceState(State);
}

uint64_t Random::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Modulo bias is irrelevant for simulation workloads; keep it simple.
  return next() % Bound;
}

int64_t Random::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

bool Random::nextPercent(unsigned Percent) {
  assert(Percent <= 100 && "percent out of range");
  return nextBelow(100) < Percent;
}

double Random::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

Random Random::stream(uint64_t Seed, uint64_t StreamId) {
  // Run the stream id through the SplitMix64 finalizer before mixing it
  // into the seed: consecutive ids (0, 1, 2, ...) must not produce
  // correlated states.
  uint64_t Z = StreamId + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  return Random(Seed ^ Z);
}
