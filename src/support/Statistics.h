//===- support/Statistics.h - Counters and histograms ----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics helpers used by the profiler and the simulator:
/// a bounded integer histogram (for dependence-distance distributions,
/// Figure 7) and simple aggregate helpers.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SUPPORT_STATISTICS_H
#define SPECSYNC_SUPPORT_STATISTICS_H

#include <cstdint>
#include <vector>

namespace specsync {

/// Histogram over small non-negative integers with an overflow bucket.
///
/// Bucket i counts samples with value i for i < NumBuckets - 1; the final
/// bucket counts everything >= NumBuckets - 1.
class Histogram {
public:
  explicit Histogram(unsigned NumBuckets);

  void addSample(uint64_t Value, uint64_t Weight = 1);

  uint64_t bucketCount(unsigned Bucket) const;
  unsigned numBuckets() const { return static_cast<unsigned>(Buckets.size()); }
  uint64_t totalSamples() const { return Total; }

  /// Fraction of all samples falling in \p Bucket; 0 if the histogram is
  /// empty.
  double bucketFraction(unsigned Bucket) const;

  void clear();

private:
  std::vector<uint64_t> Buckets;
  uint64_t Total = 0;
};

/// Returns \p Num / \p Denom as a percentage, or 0 when \p Denom is zero.
double percentOf(uint64_t Num, uint64_t Denom);

/// A two-sided confidence interval over a proportion, as fractions in
/// [0, 1].
struct ConfidenceInterval {
  double Lower = 0.0;
  double Upper = 0.0;
};

/// 95% Wilson score interval for a proportion estimated from a sample,
/// with a finite-population correction.
///
/// \p Successes of \p SampleSize observed epochs exhibited the property;
/// the run had \p Population epochs in total. The FPC shrinks the interval
/// as the sample approaches the population (sampling without replacement),
/// and when SampleSize >= Population the interval collapses to the point
/// estimate — so exact profiles get back exactly their measured frequency.
///
/// The Wilson form is used instead of the normal approximation because
/// sampled dependence counts near the paper's 5% sync threshold are small
/// (a handful of successes), where the normal interval is badly anti-
/// conservative.
ConfidenceInterval wilsonInterval(uint64_t Successes, uint64_t SampleSize,
                                  uint64_t Population);

} // namespace specsync

#endif // SPECSYNC_SUPPORT_STATISTICS_H
