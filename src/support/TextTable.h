//===- support/TextTable.h - ASCII tables and stacked bars -----*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text rendering helpers used by the benchmark harness: a column-aligned
/// ASCII table and a stacked horizontal bar renderer that mimics the paper's
/// normalized execution-time breakdown figures (busy / fail / sync / other).
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SUPPORT_TEXTTABLE_H
#define SPECSYNC_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace specsync {

/// Column-aligned ASCII table builder.
class TextTable {
public:
  /// Sets the header row. Must be called before any addRow.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row; its size must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table with a separator line under the header.
  std::string render() const;

  /// Formats a double with \p Precision fractional digits.
  static std::string formatDouble(double Value, unsigned Precision = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// One segment of a stacked bar: a label character and a magnitude.
struct BarSegment {
  char Tag;
  double Value;
};

/// Renders a horizontal stacked bar scaled so that \p UnitsPerCell units map
/// to one character cell. Example output for {busy=40, fail=30, other=10}:
///   "BBBBBBBBFFFFFFOO" followed by the total.
std::string renderStackedBar(const std::vector<BarSegment> &Segments,
                             double UnitsPerCell);

} // namespace specsync

#endif // SPECSYNC_SUPPORT_TEXTTABLE_H
