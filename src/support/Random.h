//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of the SpecSync project: a reproduction of "Compiler Optimization of
// Memory-Resident Value Communication Between Speculative Threads"
// (Zhai, Colohan, Steffan, Mowry — CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64 core) used by workload kernels and
/// property tests. std::mt19937_64 is avoided so that every platform and
/// standard library produces identical workload behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SUPPORT_RANDOM_H
#define SPECSYNC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace specsync {

/// Deterministic 64-bit pseudo-random number generator.
///
/// The sequence depends only on the seed, never on the host platform, so
/// simulated workloads are bit-reproducible across machines.
class Random {
public:
  explicit Random(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a value in the closed interval [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p Percent / 100.
  bool nextPercent(unsigned Percent);

  /// Returns a double in [0, 1).
  double nextDouble();

  /// Returns a generator for an independent stream derived from (\p Seed,
  /// \p StreamId). Streams with distinct ids land in unrelated parts of
  /// the SplitMix64 state space, so drawing from one stream never perturbs
  /// another — e.g. fault-injection schedules must not disturb workload
  /// randomness even though both descend from user-supplied seeds.
  static Random stream(uint64_t Seed, uint64_t StreamId);

  /// The raw SplitMix64 state, for checkpoint/restore. The real-threads
  /// backend snapshots the interpreter RNG at each epoch boundary so
  /// speculative epochs can re-execute `rand` deterministically.
  uint64_t state() const { return State; }
  void setState(uint64_t S) { State = S; }

  /// The SplitMix64 step on a raw state word — the single definition of
  /// the sequence, shared by next() and the native execution tier (which
  /// keeps the state in a NativeCtx slot / register while running).
  static uint64_t advanceState(uint64_t &S) {
    S += 0x9e3779b97f4a7c15ull;
    uint64_t Z = S;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

} // namespace specsync

#endif // SPECSYNC_SUPPORT_RANDOM_H
