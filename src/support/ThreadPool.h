//===- support/ThreadPool.h - Work-stealing thread pool --------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the experiment runner and other
/// embarrassingly parallel host-side work. Each worker owns a deque; it
/// pops from the back of its own deque (LIFO, cache-friendly) and steals
/// from the front of a victim's deque (FIFO, oldest-first) when its own
/// runs dry. Tasks are coarse (whole benchmark cells), so the deques are
/// mutex-protected rather than lock-free — contention is negligible at
/// this granularity and the implementation stays obviously correct under
/// ThreadSanitizer.
///
/// Determinism note: the pool schedules *execution*; it must never be the
/// source of result ordering. Callers that need deterministic output
/// (the experiment runner) consume results in their own canonical order.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SUPPORT_THREADPOOL_H
#define SPECSYNC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace specsync {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers. 0 is clamped to 1. The pool is
  /// intentionally cheap to construct per experiment grid.
  explicit ThreadPool(unsigned NumThreads);

  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (the pool joins its workers).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task. Tasks submitted from a worker thread go to that
  /// worker's own deque (depth-first help); external submissions are
  /// distributed round-robin.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished executing.
  void waitIdle();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Total tasks stolen from another worker's deque (test/diagnostics).
  uint64_t stealCount() const { return Steals.load(std::memory_order_relaxed); }

  /// The job count used when a caller asks for "0" jobs: the
  /// SPECSYNC_JOBS environment override, else std::thread::hardware_concurrency.
  static unsigned defaultJobs();

private:
  struct Worker {
    std::mutex M;
    std::deque<std::function<void()>> Queue;
  };

  void workerLoop(unsigned Me);
  bool popOwn(unsigned Me, std::function<void()> &Task);
  bool stealOther(unsigned Me, std::function<void()> &Task);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;

  // Sleep/wake and completion accounting.
  std::mutex IdleM;
  std::condition_variable WorkCv;  ///< Signaled when work arrives / stops.
  std::condition_variable IdleCv;  ///< Signaled when Outstanding hits zero.
  size_t Outstanding = 0;          ///< Submitted but not yet finished.
  bool Stopping = false;

  std::atomic<uint64_t> Steals{0};
  std::atomic<unsigned> NextVictim{0}; ///< Round-robin submission cursor.
};

/// Runs Fn(I) for every I in [0, N) on the pool, with the calling thread
/// participating. Iterations are claimed one at a time from a shared
/// atomic cursor (coarse tasks; no need for range splitting). The first
/// exception thrown by any iteration is rethrown on the caller after all
/// claimed iterations finish. With a null pool or one that has a single
/// thread the loop still executes every iteration (the caller does the
/// work).
void parallelFor(ThreadPool *Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace specsync

#endif // SPECSYNC_SUPPORT_THREADPOOL_H
