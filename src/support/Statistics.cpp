//===- support/Statistics.cpp ---------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace specsync;

Histogram::Histogram(unsigned NumBuckets) : Buckets(NumBuckets, 0) {
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::addSample(uint64_t Value, uint64_t Weight) {
  unsigned Bucket = Value >= Buckets.size() - 1
                        ? static_cast<unsigned>(Buckets.size() - 1)
                        : static_cast<unsigned>(Value);
  Buckets[Bucket] += Weight;
  Total += Weight;
}

uint64_t Histogram::bucketCount(unsigned Bucket) const {
  assert(Bucket < Buckets.size() && "bucket out of range");
  return Buckets[Bucket];
}

double Histogram::bucketFraction(unsigned Bucket) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(bucketCount(Bucket)) / static_cast<double>(Total);
}

void Histogram::clear() {
  for (uint64_t &B : Buckets)
    B = 0;
  Total = 0;
}

double specsync::percentOf(uint64_t Num, uint64_t Denom) {
  if (Denom == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Num) / static_cast<double>(Denom);
}

ConfidenceInterval specsync::wilsonInterval(uint64_t Successes,
                                            uint64_t SampleSize,
                                            uint64_t Population) {
  assert(Successes <= SampleSize && "more successes than samples");
  ConfidenceInterval CI;
  if (SampleSize == 0)
    return CI;
  const double N = static_cast<double>(SampleSize);
  const double P = static_cast<double>(Successes) / N;
  // Census (or over-complete sample): the proportion is known exactly.
  if (Population <= SampleSize || Population <= 1) {
    CI.Lower = CI.Upper = P;
    return CI;
  }
  // Finite-population correction folded into the critical value: the
  // standard error of a without-replacement sample shrinks by
  // sqrt((T - n) / (T - 1)).
  const double T = static_cast<double>(Population);
  const double Z = 1.96 * std::sqrt((T - N) / (T - 1.0));
  const double Z2 = Z * Z;
  const double Denom = 1.0 + Z2 / N;
  const double Center = P + Z2 / (2.0 * N);
  const double Half = Z * std::sqrt(P * (1.0 - P) / N + Z2 / (4.0 * N * N));
  CI.Lower = std::max(0.0, (Center - Half) / Denom);
  CI.Upper = std::min(1.0, (Center + Half) / Denom);
  return CI;
}
