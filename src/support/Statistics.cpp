//===- support/Statistics.cpp ---------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <cassert>

using namespace specsync;

Histogram::Histogram(unsigned NumBuckets) : Buckets(NumBuckets, 0) {
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::addSample(uint64_t Value, uint64_t Weight) {
  unsigned Bucket = Value >= Buckets.size() - 1
                        ? static_cast<unsigned>(Buckets.size() - 1)
                        : static_cast<unsigned>(Value);
  Buckets[Bucket] += Weight;
  Total += Weight;
}

uint64_t Histogram::bucketCount(unsigned Bucket) const {
  assert(Bucket < Buckets.size() && "bucket out of range");
  return Buckets[Bucket];
}

double Histogram::bucketFraction(unsigned Bucket) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(bucketCount(Bucket)) / static_cast<double>(Total);
}

void Histogram::clear() {
  for (uint64_t &B : Buckets)
    B = 0;
  Total = 0;
}

double specsync::percentOf(uint64_t Num, uint64_t Denom) {
  if (Denom == 0)
    return 0.0;
  return 100.0 * static_cast<double>(Num) / static_cast<double>(Denom);
}
