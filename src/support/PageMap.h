//===- support/PageMap.h - Open-addressing page table -----------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-free-on-hit page table shared by the interpreter's sparse memory
/// and the dependence profiler's shadow memory. Pages are owned by the
/// table (stable addresses across growth, so callers may cache the most
/// recently used page) and looked up by page id through a power-of-two
/// open-addressing index with linear probing — the PROMPT-style flat
/// design that replaces per-access node-based `unordered_map` lookups on
/// the execution engine's hot path.
///
//===----------------------------------------------------------------------===//

#ifndef SPECSYNC_SUPPORT_PAGEMAP_H
#define SPECSYNC_SUPPORT_PAGEMAP_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace specsync {

/// Maps 64-bit page ids to heap-allocated pages of type \p PageT (which
/// must be value-initializable; a freshly created page is zero state).
template <typename PageT> class PageMap {
public:
  PageMap() { Slots.resize(InitialSlots); }

  /// Returns the page for \p Id, or nullptr if it was never created.
  /// Never allocates; safe on const hot paths.
  PageT *lookup(uint64_t Id) const {
    size_t Mask = Slots.size() - 1;
    for (size_t Pos = hashId(Id) & Mask;; Pos = (Pos + 1) & Mask) {
      const Slot &S = Slots[Pos];
      if (!S.Page)
        return nullptr;
      if (S.Id == Id)
        return S.Page;
    }
  }

  /// Returns the page for \p Id, creating a zeroed one on first use.
  PageT &getOrCreate(uint64_t Id) {
    if (PageT *P = lookup(Id))
      return *P;
    if ((NumPages + 1) * 2 >= Slots.size())
      grow();
    Pages.push_back(std::make_unique<PageT>());
    Ids.push_back(Id);
    PageT *P = Pages.back().get();
    insertSlot(Id, P);
    ++NumPages;
    return *P;
  }

  size_t size() const { return NumPages; }
  bool empty() const { return NumPages == 0; }

  /// Visits every page as (id, page) in ascending id order — the
  /// deterministic iteration checksums and serialization rely on.
  template <typename F> void forEachSorted(F &&Fn) const {
    std::vector<size_t> Order(Pages.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(),
              [&](size_t A, size_t B) { return Ids[A] < Ids[B]; });
    for (size_t I : Order)
      Fn(Ids[I], *Pages[I]);
  }

  /// Drops every page and resets the index.
  void clear() {
    Pages.clear();
    Ids.clear();
    NumPages = 0;
    Slots.assign(InitialSlots, Slot());
  }

private:
  struct Slot {
    uint64_t Id = 0;
    PageT *Page = nullptr; ///< nullptr marks an empty slot.
  };

  static constexpr size_t InitialSlots = 64;

  static uint64_t hashId(uint64_t X) {
    // splitmix64 finalizer: cheap, well-distributed for sequential ids.
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  void insertSlot(uint64_t Id, PageT *P) {
    size_t Mask = Slots.size() - 1;
    size_t Pos = hashId(Id) & Mask;
    while (Slots[Pos].Page)
      Pos = (Pos + 1) & Mask;
    Slots[Pos] = Slot{Id, P};
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, Slot());
    for (const Slot &S : Old)
      if (S.Page)
        insertSlot(S.Id, S.Page);
  }

  std::vector<Slot> Slots;
  std::vector<std::unique_ptr<PageT>> Pages; ///< Stable page addresses.
  std::vector<uint64_t> Ids;                 ///< Parallel to Pages.
  size_t NumPages = 0;
};

} // namespace specsync

#endif // SPECSYNC_SUPPORT_PAGEMAP_H
