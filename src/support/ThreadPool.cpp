//===- support/ThreadPool.cpp -----------------------------------*- C++ -*-===//
//
// Part of the SpecSync project (CGO 2004 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>
#include <exception>

using namespace specsync;

namespace {
/// Which worker (if any) the current thread is; -1 on external threads.
thread_local int CurrentWorker = -1;
/// The pool the current worker thread belongs to.
thread_local ThreadPool *CurrentPool = nullptr;
} // namespace

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("SPECSYNC_JOBS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  waitIdle();
  {
    std::lock_guard<std::mutex> L(IdleM);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Target;
  if (CurrentPool == this && CurrentWorker >= 0)
    Target = static_cast<unsigned>(CurrentWorker);
  else
    Target = NextVictim.fetch_add(1, std::memory_order_relaxed) %
             Workers.size();
  {
    std::lock_guard<std::mutex> L(IdleM);
    ++Outstanding;
  }
  {
    std::lock_guard<std::mutex> L(Workers[Target]->M);
    Workers[Target]->Queue.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

bool ThreadPool::popOwn(unsigned Me, std::function<void()> &Task) {
  Worker &W = *Workers[Me];
  std::lock_guard<std::mutex> L(W.M);
  if (W.Queue.empty())
    return false;
  Task = std::move(W.Queue.back());
  W.Queue.pop_back();
  return true;
}

bool ThreadPool::stealOther(unsigned Me, std::function<void()> &Task) {
  for (size_t Off = 1; Off < Workers.size(); ++Off) {
    Worker &V = *Workers[(Me + Off) % Workers.size()];
    std::lock_guard<std::mutex> L(V.M);
    if (V.Queue.empty())
      continue;
    Task = std::move(V.Queue.front());
    V.Queue.pop_front();
    Steals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Me) {
  CurrentWorker = static_cast<int>(Me);
  CurrentPool = this;
  for (;;) {
    std::function<void()> Task;
    if (popOwn(Me, Task) || stealOther(Me, Task)) {
      Task();
      std::lock_guard<std::mutex> L(IdleM);
      if (--Outstanding == 0)
        IdleCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> L(IdleM);
    if (Stopping)
      return;
    // Re-check under the lock: a submit between our scan and here would
    // otherwise be missed.
    bool AnyQueued = false;
    for (const std::unique_ptr<Worker> &W : Workers) {
      std::lock_guard<std::mutex> QL(W->M);
      if (!W->Queue.empty()) {
        AnyQueued = true;
        break;
      }
    }
    if (AnyQueued)
      continue;
    WorkCv.wait(L);
  }
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> L(IdleM);
  IdleCv.wait(L, [this] { return Outstanding == 0; });
}

void specsync::parallelFor(ThreadPool *Pool, size_t N,
                           const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (!Pool || Pool->numThreads() <= 1 || N == 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }

  struct Shared {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::mutex M;
    std::condition_variable Cv;
    std::exception_ptr FirstError;
  };
  auto S = std::make_shared<Shared>();

  auto Run = [S, N, &Fn] {
    for (;;) {
      size_t I = S->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        break;
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> L(S->M);
        if (!S->FirstError)
          S->FirstError = std::current_exception();
      }
      if (S->Done.fetch_add(1, std::memory_order_acq_rel) + 1 == N) {
        std::lock_guard<std::mutex> L(S->M);
        S->Cv.notify_all();
      }
    }
  };

  size_t Helpers = std::min<size_t>(Pool->numThreads(), N) - 1;
  for (size_t H = 0; H < Helpers; ++H)
    Pool->submit(Run);
  Run(); // The caller participates.

  std::unique_lock<std::mutex> L(S->M);
  S->Cv.wait(L, [&] { return S->Done.load(std::memory_order_acquire) == N; });
  if (S->FirstError)
    std::rethrow_exception(S->FirstError);
}
